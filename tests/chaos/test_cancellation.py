"""Cancellation of parallel runs: no orphaned workers, no swallowed ^C.

:func:`repro.parallel.run_tasks` distinguishes two teardown tiers:

* a task raising an ordinary ``Exception`` cancels the queued chunks but
  **keeps the warm pool** (one bad task must not cost every later caller
  the fork/import tax);
* an interrupt-style ``BaseException`` — a ``KeyboardInterrupt`` out of a
  worker, or out of a progress callback in the parent — cancels everything
  *and shuts the pool down*, so an aborted campaign never leaves worker
  processes behind.

The shm executor tier extends the no-orphan guarantee to ``/dev/shm``:
whatever ends a run — normal completion, a task exception, an interrupt,
or a SIGTERM-style drain — every shared-memory arena the run allocated
(task arenas *and* pre-registered result segments) must be gone
afterwards.  :class:`TestArenaLifecycle` globs the prefix directly.

The single-CPU auto-serial guard is monkeypatched away so these tests
exercise the real pool even on a 1-core runner.
"""

from __future__ import annotations

import glob
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

import repro.parallel as parallel
from repro.chaos.campaign import run_campaign
from repro.parallel import run_tasks, shutdown_pool


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    import time

    time.sleep(0.05)
    return x * x


def _boom_value(x: int) -> int:
    if x == 3:
        raise ValueError("task 3 is cursed")
    return x


def _boom_interrupt(x: int) -> int:
    if x == 3:
        raise KeyboardInterrupt
    return x


def _no_segments() -> bool:
    return not glob.glob("/dev/shm/repro_shm_*")


@pytest.fixture(autouse=True)
def force_parallel_path(monkeypatch):
    """Defeat the 1-CPU auto-serial guard; always leave no pool behind."""
    monkeypatch.setattr(parallel, "effective_cpu_count", lambda: 4)
    yield
    shutdown_pool()
    assert parallel._pool is None
    assert parallel._thread_pool is None
    assert _no_segments()


class TestWorkerExceptions:
    def test_ordinary_exception_keeps_the_pool_warm(self):
        with pytest.raises(ValueError, match="cursed"):
            run_tasks(_boom_value, range(8), jobs=2)
        assert parallel._pool is not None  # warm pool survived
        # ...and is immediately reusable.
        assert run_tasks(_square, range(8), jobs=2) == [x * x for x in range(8)]

    def test_worker_interrupt_shuts_the_pool_down(self):
        run_tasks(_square, range(8), jobs=2)  # warm it first
        assert parallel._pool is not None
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_boom_interrupt, range(8), jobs=2)
        assert parallel._pool is None  # no orphaned workers

    def test_pool_rebuilds_after_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_boom_interrupt, range(8), jobs=2)
        assert run_tasks(_square, range(8), jobs=2) == [x * x for x in range(8)]


class TestParentCancellation:
    def test_progress_callback_interrupt_tears_down(self):
        seen = []

        def cancel_after_first(done, total, result):
            seen.append(result)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_tasks(_square, range(16), jobs=2, progress=cancel_after_first)
        assert seen  # at least one result arrived before the cancel
        assert parallel._pool is None

    def test_serial_interrupt_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_boom_interrupt, range(8), jobs=1)


class TestPoolResize:
    def test_resize_drains_in_flight_batches(self):
        """Resizing the warm pool must not lose batches already dispatched.

        The service submits job batches straight onto :func:`warm_pool`; a
        concurrently arriving request with a different worker count used to
        hard-kill the old pool (``cancel_futures=True``) and cancel those
        in-flight batches.  The resize now *drains*: every future submitted
        before the resize still delivers its result.
        """
        pool = parallel.warm_pool(2)
        futures = [
            pool.submit(parallel._run_chunk, (_slow_square, [x]))
            for x in range(6)
        ]
        resized = parallel.warm_pool(3)
        assert resized is not pool
        assert parallel._pool_workers == 3
        results = [fut.result(timeout=30) for fut in futures]
        assert results == [[x * x] for x in range(6)]
        assert not any(fut.cancelled() for fut in futures)
        # The resized pool is live and usable.
        assert resized.submit(parallel._run_chunk, (_square, [7])).result(timeout=30) == [49]


def _big_square(task):
    idx, arr = task
    return (idx, float(arr.sum()))


def _slow_big_square(task):
    import time

    time.sleep(0.05)
    return _big_square(task)


def _boom_big(task):
    if task[0] == 3:
        raise ValueError("task 3 is cursed")
    return _big_square(task)


def _big_tasks(count: int = 16):
    rng = np.random.default_rng(5)
    return [(i, rng.random(20_000)) for i in range(count)]


class TestArenaLifecycle:
    """No leaked ``/dev/shm`` segments, whatever ends an shm-tier run."""

    def test_normal_completion_leaves_no_segments(self):
        tasks = _big_tasks()
        results = run_tasks(_big_square, tasks, jobs=2, executor="shm")
        assert parallel.last_run_stats()["executor"] == "shm"
        assert parallel.last_run_stats()["arena_bytes"] > 0
        assert results == [(i, float(a.sum())) for i, a in tasks]
        assert _no_segments()

    def test_task_exception_sweeps_arenas_keeps_pool(self):
        with pytest.raises(ValueError, match="cursed"):
            run_tasks(_boom_big, _big_tasks(), jobs=2, executor="shm")
        assert parallel._pool is not None  # warm pool survived...
        assert _no_segments()              # ...but the arenas did not

    def test_progress_interrupt_sweeps_arenas_and_pools(self):
        def cancel_after_first(done, total, result):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_tasks(_slow_big_square, _big_tasks(), jobs=2, executor="shm",
                      progress=cancel_after_first)
        assert parallel._pool is None
        assert _no_segments()

    def test_shutdown_pool_sweeps_registered_names(self):
        import repro.shm as shm

        arena = shm.Arena.create("orphan", 8192)
        arena.close()
        assert not _no_segments()
        shutdown_pool()
        assert _no_segments()
        assert shm.registered_names() == ()

    def test_sigterm_drain_leaves_no_segments(self, tmp_path):
        """A SIGTERM-style drain mid-run reclaims every arena.

        A child process maps SIGTERM to ``KeyboardInterrupt`` (the
        service's drain path unwinds the same way), starts an shm-tier
        run with large payloads, and is terminated mid-flight; it must
        exit through the sweep with zero segments left — observed both
        by the child itself and by this test after it exits.
        """
        script = tmp_path / "sigterm_drain.py"
        script.write_text(textwrap.dedent("""
            import glob, signal, sys

            import numpy as np

            import repro.parallel as parallel

            parallel.effective_cpu_count = lambda: 4

            def _drain(signum, frame):
                raise KeyboardInterrupt

            signal.signal(signal.SIGTERM, _drain)

            def slow_task(task):
                import time
                idx, arr = task
                time.sleep(0.25)
                return (idx, float(arr.sum()))

            if __name__ == "__main__":
                rng = np.random.default_rng(0)
                tasks = [(i, rng.random(20_000)) for i in range(16)]
                print("READY", flush=True)
                try:
                    parallel.run_tasks(slow_task, tasks, jobs=2, executor="shm")
                except KeyboardInterrupt:
                    left = glob.glob("/dev/shm/repro_shm_*")
                    print(f"SWEPT {len(left)}", flush=True)
                    sys.exit(0)
                print("COMPLETED", flush=True)
                sys.exit(0)
        """))
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(parallel.__file__), os.pardir)
        env["PYTHONPATH"] = os.path.abspath(src)
        proc = subprocess.Popen(
            [sys.executable, str(script)], env=env,
            stdout=subprocess.PIPE, text=True,
        )
        try:
            assert proc.stdout.readline().strip() == "READY"
            time.sleep(0.5)  # let chunks (and their arenas) dispatch
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
        finally:
            if proc.poll() is None:  # pragma: no cover - hung child
                proc.kill()
        assert proc.returncode == 0, out
        assert "SWEPT 0" in out or "COMPLETED" in out
        assert _no_segments()


class TestCampaignCancellation:
    def test_campaign_progress_cancel_leaves_no_pool(self, tmp_path):
        def cancel_immediately(idx, outcome):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(count=8, seed=1, out=str(tmp_path / "r.jsonl"),
                         backends=("phase",), shrink_failures=False,
                         progress=cancel_immediately, jobs=2)
        assert parallel._pool is None

    def test_campaign_completes_after_cancelled_run(self, tmp_path):
        def cancel_immediately(idx, outcome):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(count=8, seed=1, out=None, backends=("phase",),
                         shrink_failures=False,
                         progress=cancel_immediately, jobs=2)
        summary = run_campaign(count=4, seed=1, out=None, backends=("phase",),
                               shrink_failures=False, jobs=2)
        assert summary.scenarios == 4
        assert summary.all_passed
