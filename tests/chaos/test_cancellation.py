"""Cancellation of parallel runs: no orphaned workers, no swallowed ^C.

:func:`repro.parallel.run_tasks` distinguishes two teardown tiers:

* a task raising an ordinary ``Exception`` cancels the queued chunks but
  **keeps the warm pool** (one bad task must not cost every later caller
  the fork/import tax);
* an interrupt-style ``BaseException`` — a ``KeyboardInterrupt`` out of a
  worker, or out of a progress callback in the parent — cancels everything
  *and shuts the pool down*, so an aborted campaign never leaves worker
  processes behind.

The single-CPU auto-serial guard is monkeypatched away so these tests
exercise the real pool even on a 1-core runner.
"""

from __future__ import annotations

import pytest

import repro.parallel as parallel
from repro.chaos.campaign import run_campaign
from repro.parallel import run_tasks, shutdown_pool


def _square(x: int) -> int:
    return x * x


def _slow_square(x: int) -> int:
    import time

    time.sleep(0.05)
    return x * x


def _boom_value(x: int) -> int:
    if x == 3:
        raise ValueError("task 3 is cursed")
    return x


def _boom_interrupt(x: int) -> int:
    if x == 3:
        raise KeyboardInterrupt
    return x


@pytest.fixture(autouse=True)
def force_parallel_path(monkeypatch):
    """Defeat the 1-CPU auto-serial guard; always leave no pool behind."""
    monkeypatch.setattr(parallel, "effective_cpu_count", lambda: 4)
    yield
    shutdown_pool()
    assert parallel._pool is None


class TestWorkerExceptions:
    def test_ordinary_exception_keeps_the_pool_warm(self):
        with pytest.raises(ValueError, match="cursed"):
            run_tasks(_boom_value, range(8), jobs=2)
        assert parallel._pool is not None  # warm pool survived
        # ...and is immediately reusable.
        assert run_tasks(_square, range(8), jobs=2) == [x * x for x in range(8)]

    def test_worker_interrupt_shuts_the_pool_down(self):
        run_tasks(_square, range(8), jobs=2)  # warm it first
        assert parallel._pool is not None
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_boom_interrupt, range(8), jobs=2)
        assert parallel._pool is None  # no orphaned workers

    def test_pool_rebuilds_after_interrupt(self):
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_boom_interrupt, range(8), jobs=2)
        assert run_tasks(_square, range(8), jobs=2) == [x * x for x in range(8)]


class TestParentCancellation:
    def test_progress_callback_interrupt_tears_down(self):
        seen = []

        def cancel_after_first(done, total, result):
            seen.append(result)
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_tasks(_square, range(16), jobs=2, progress=cancel_after_first)
        assert seen  # at least one result arrived before the cancel
        assert parallel._pool is None

    def test_serial_interrupt_propagates(self):
        with pytest.raises(KeyboardInterrupt):
            run_tasks(_boom_interrupt, range(8), jobs=1)


class TestPoolResize:
    def test_resize_drains_in_flight_batches(self):
        """Resizing the warm pool must not lose batches already dispatched.

        The service submits job batches straight onto :func:`warm_pool`; a
        concurrently arriving request with a different worker count used to
        hard-kill the old pool (``cancel_futures=True``) and cancel those
        in-flight batches.  The resize now *drains*: every future submitted
        before the resize still delivers its result.
        """
        pool = parallel.warm_pool(2)
        futures = [
            pool.submit(parallel._run_chunk, (_slow_square, [x]))
            for x in range(6)
        ]
        resized = parallel.warm_pool(3)
        assert resized is not pool
        assert parallel._pool_workers == 3
        results = [fut.result(timeout=30) for fut in futures]
        assert results == [[x * x] for x in range(6)]
        assert not any(fut.cancelled() for fut in futures)
        # The resized pool is live and usable.
        assert resized.submit(parallel._run_chunk, (_square, [7])).result(timeout=30) == [49]


class TestCampaignCancellation:
    def test_campaign_progress_cancel_leaves_no_pool(self, tmp_path):
        def cancel_immediately(idx, outcome):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(count=8, seed=1, out=str(tmp_path / "r.jsonl"),
                         backends=("phase",), shrink_failures=False,
                         progress=cancel_immediately, jobs=2)
        assert parallel._pool is None

    def test_campaign_completes_after_cancelled_run(self, tmp_path):
        def cancel_immediately(idx, outcome):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(count=8, seed=1, out=None, backends=("phase",),
                         shrink_failures=False,
                         progress=cancel_immediately, jobs=2)
        summary = run_campaign(count=4, seed=1, out=None, backends=("phase",),
                               shrink_failures=False, jobs=2)
        assert summary.scenarios == 4
        assert summary.all_passed
