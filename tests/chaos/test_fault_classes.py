"""Multi-class campaigns: seed stability, parallel determinism, aggregation."""

from __future__ import annotations

import json

import pytest

from repro.chaos.campaign import run_campaign, run_scenario
from repro.chaos.schedule import random_scenario

ALL_CLASSES = ("baseline", "comparison", "memory", "hybrid", "abft")


class TestSeedStability:
    def test_jsonl_byte_identical_across_jobs(self, tmp_path):
        # Same seed + classes must produce a byte-identical JSONL report
        # whether scenarios run serially or across 4 worker processes —
        # scenario derivation is per-index deterministic and every class
        # seeds its injector from the scenario, not process state.
        out1 = tmp_path / "serial.jsonl"
        out4 = tmp_path / "parallel.jsonl"
        run_campaign(count=10, seed=1992, out=str(out1), jobs=1,
                     shrink_failures=False, fault_classes=ALL_CLASSES)
        run_campaign(count=10, seed=1992, out=str(out4), jobs=4,
                     shrink_failures=False, fault_classes=ALL_CLASSES)
        assert out1.read_bytes() == out4.read_bytes()

    def test_rerun_is_deterministic(self):
        scenario = random_scenario(4, 7, fault_classes=("comparison",))
        a = run_scenario(scenario)
        b = run_scenario(scenario)
        assert a.to_dict() == b.to_dict()


class TestCampaignAggregation:
    @pytest.fixture(scope="class")
    def summary(self):
        return run_campaign(count=20, seed=1992, shrink_failures=False,
                            fault_classes=ALL_CLASSES)

    def test_every_class_ran_on_both_backends(self, summary):
        assert set(summary.fault_classes) == set(ALL_CLASSES)
        for name, entry in summary.fault_classes.items():
            assert set(entry["backends"]) == {"phase", "spmd"}, name

    def test_survival_curves_have_points(self, summary):
        for name, entry in summary.fault_classes.items():
            assert entry["curve"], name
            for point in entry["curve"].values():
                assert point["scenarios"] >= 1
                assert 0.0 <= point["pass_rate"] <= 1.0

    def test_comparison_judged_by_dislocation_not_equality(self, summary):
        entry = summary.fault_classes["comparison"]
        assert entry["oracle"] == "max-dislocation"
        assert entry["curve_param"] == "p"
        assert any(
            "max_max_dislocation" in point for point in entry["curve"].values()
        )

    def test_summary_counts_are_consistent(self, summary):
        assert summary.scenarios == 20
        assert sum(e["scenarios"] for e in summary.fault_classes.values()) == 20
        assert sum(e["passed"] for e in summary.fault_classes.values()) == (
            summary.passed)

    def test_summary_serializes(self, summary):
        d = summary.to_dict()
        json.dumps(d)  # JSON-clean all the way down
        assert "fault_classes" in d


class TestReportLines:
    def test_lines_carry_class_and_oracle(self, tmp_path):
        out = tmp_path / "report.jsonl"
        run_campaign(count=10, seed=3, out=str(out), shrink_failures=False,
                     fault_classes=("comparison", "abft"))
        lines = [json.loads(l) for l in out.read_text().splitlines()]
        scenario_lines = [l for l in lines if "scenario" in l]
        assert scenario_lines
        for line in scenario_lines:
            assert line["scenario"]["fault_class"] in ("comparison", "abft")
            assert line["oracle"]["kind"] in ("max-dislocation", "abft-detection")
            assert isinstance(line["scenario"]["fault_params"], dict)

    def test_unknown_class_fails_before_any_work(self):
        with pytest.raises(ValueError, match="unknown fault class"):
            run_campaign(count=4, seed=0, fault_classes=("gremlins",))
