"""Tests for repro.chaos.schedule — scenario model and generation."""

from __future__ import annotations

from repro.chaos import ChaosScenario, random_scenario
from repro.chaos.schedule import ARRIVAL_STRATA
from repro.faults.model import FaultKind, FaultSet


class TestRandomScenario:
    def test_deterministic_from_seed_and_id(self):
        a = random_scenario(7, seed=3)
        b = random_scenario(7, seed=3)
        assert a == b
        assert random_scenario(7, seed=4) != a

    def test_budget_respected_after_absorption(self):
        # Static + event processors + one endpoint per event link must stay
        # within the paper's r <= n - 1, with every victim distinct.
        for sid in range(80):
            scn = random_scenario(sid, seed=11)
            victims = set(scn.static_processors)
            absorbed = len(scn.static_processors)
            for ev in scn.events:
                if ev.kind == "processor":
                    assert ev.subject not in victims
                    victims.add(ev.subject)
                else:
                    a, b = ev.subject
                    assert a not in victims and b not in victims
                    victims.update((a, b))
                absorbed += 1
            assert 1 <= absorbed <= scn.n - 1
            assert len(scn.events) >= 1

    def test_backends_alternate(self):
        backends = {random_scenario(i, seed=0).backend for i in range(4)}
        assert backends == {"phase", "spmd"}

    def test_arrival_strata_all_hit(self):
        # One full pass over the strata table covers every stage bucket.
        fracs = [random_scenario(i, seed=5).events[0].frac
                 for i in range(len(ARRIVAL_STRATA))]
        for stratum, frac in zip(ARRIVAL_STRATA, fracs):
            assert abs(frac - stratum) <= 0.03 + 1e-9 or (
                stratum == 0.0 and 0.0 <= frac <= 0.03
            )

    def test_static_faults_form_valid_faultset(self):
        for sid in range(40):
            scn = random_scenario(sid, seed=2)
            fs = FaultSet(scn.n, scn.static_processors,
                          kind=FaultKind.PARTIAL, links=scn.static_links)
            assert fs.satisfies_paper_model()


class TestSerialization:
    def test_round_trip(self):
        scn = random_scenario(13, seed=9)
        assert ChaosScenario.from_dict(scn.to_dict()) == scn

    def test_dict_is_json_plain(self):
        import json

        scn = random_scenario(4, seed=1)
        json.dumps(scn.to_dict())  # must not raise
