"""Tests for repro.chaos.shrink — minimal-reproducer reduction."""

from __future__ import annotations

from dataclasses import replace

from repro.chaos import random_scenario, shrink_scenario
from repro.chaos.schedule import ScenarioEvent


def _scenario_with(events, static=(), keys=64):
    base = random_scenario(0, seed=33, n_choices=(4,))
    return replace(base, events=tuple(events),
                   static_processors=tuple(static), keys=keys)


class TestShrinkScenario:
    def test_non_failing_scenario_returned_unchanged(self):
        scn = _scenario_with([ScenarioEvent("processor", 5, 0.5)])
        assert shrink_scenario(scn, still_fails=lambda s: False) is scn

    def test_drops_irrelevant_events(self):
        # Failure is "an event on processor 5 exists": everything else —
        # other events, static faults, most keys — must shrink away.
        scn = _scenario_with(
            [ScenarioEvent("processor", 5, 0.5),
             ScenarioEvent("processor", 9, 0.2),
             ScenarioEvent("link", (2, 6), 0.8)],
            static=(1,),
        )

        def fails(s):
            return any(e.kind == "processor" and e.subject == 5 for e in s.events)

        reduced = shrink_scenario(scn, still_fails=fails)
        assert [e.subject for e in reduced.events] == [5]
        assert reduced.static_processors == ()
        assert reduced.keys == 8

    def test_keys_not_reduced_below_floor(self):
        scn = _scenario_with([ScenarioEvent("processor", 5, 0.5)], keys=100)
        reduced = shrink_scenario(scn, still_fails=lambda s: True)
        assert reduced.keys == 8
        assert reduced.events == ()  # everything removable got removed

    def test_real_failing_scenario_still_fails_after_shrink(self):
        # Manufacture a genuinely failing scenario (invalid subject) and
        # shrink through the real campaign predicate.
        scn = _scenario_with(
            [ScenarioEvent("processor", 10**6, 0.5),
             ScenarioEvent("processor", 9, 0.2)],
        )
        from repro.chaos.campaign import run_scenario

        assert not run_scenario(scn).passed
        reduced = shrink_scenario(scn)
        assert not run_scenario(reduced).passed
        assert len(reduced.events) == 1
        assert reduced.events[0].subject == 10**6
