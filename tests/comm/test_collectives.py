"""Tests for repro.comm.collectives — binomial-tree collectives."""

from __future__ import annotations

import operator

import pytest

from repro.comm.collectives import allreduce, barrier, broadcast, gather, reduce, scatter
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams
from repro.simulator.spmd import Proc, SpmdMachine


def machine(n, faults=None, t_element=1.0, t_startup=0.0):
    return SpmdMachine(
        n,
        faults=faults,
        params=MachineParams(t_compare=1.0, t_element=t_element, t_startup=t_startup),
    )


class TestBroadcast:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    @pytest.mark.parametrize("root", [0, 1])
    def test_all_ranks_receive(self, n, root):
        if root >= (1 << n):
            pytest.skip("root outside cube")
        received = {}

        def program(proc: Proc):
            value = yield from broadcast(
                proc, n, root=root, payload="data" if proc.rank == root else None, size=8
            )
            received[proc.rank] = value

        machine(n).run(program)
        assert received == {rank: "data" for rank in range(1 << n)}

    def test_latency_is_n_hops(self):
        # Binomial broadcast completes in n sequential transfers.
        n = 4
        m = machine(n, t_element=1.0)

        def program(proc: Proc):
            yield from broadcast(proc, n, root=0, payload=0, size=10)

        finish = m.run(program)
        assert finish == n * 10.0


class TestGather:
    def test_root_collects_everything(self):
        n = 3
        result = {}

        def program(proc: Proc):
            out = yield from gather(proc, n, root=0, value=proc.rank * 2)
            if out is not None:
                result.update(out)

        machine(n).run(program)
        assert result == {rank: rank * 2 for rank in range(8)}

    def test_nonzero_root(self):
        n = 2
        result = {}

        def program(proc: Proc):
            out = yield from gather(proc, n, root=3, value=proc.rank)
            if out is not None:
                result.update(out)

        machine(n).run(program)
        assert result == {0: 0, 1: 1, 2: 2, 3: 3}


class TestScatter:
    def test_each_rank_gets_its_chunk(self):
        n = 3
        got = {}

        def program(proc: Proc):
            chunks = {rank: rank * 10 for rank in range(8)} if proc.rank == 0 else None
            mine = yield from scatter(proc, n, root=0, chunks=chunks)
            got[proc.rank] = mine

        machine(n).run(program)
        assert got == {rank: rank * 10 for rank in range(8)}

    def test_missing_chunks_are_none(self):
        n = 2
        got = {}

        def program(proc: Proc):
            chunks = {1: "only"} if proc.rank == 0 else None
            got[proc.rank] = yield from scatter(proc, n, root=0, chunks=chunks)

        machine(n).run(program)
        assert got == {0: None, 1: "only", 2: None, 3: None}

    def test_scatter_from_nonzero_root(self):
        n = 2
        got = {}

        def program(proc: Proc):
            chunks = {rank: rank + 100 for rank in range(4)} if proc.rank == 2 else None
            got[proc.rank] = yield from scatter(proc, n, root=2, chunks=chunks)

        machine(n).run(program)
        assert got == {rank: rank + 100 for rank in range(4)}


class TestReduce:
    def test_sum_at_root(self):
        n = 3
        result = {}

        def program(proc: Proc):
            out = yield from reduce(proc, n, root=0, value=proc.rank, op=operator.add)
            if out is not None:
                result["sum"] = out

        machine(n).run(program)
        assert result["sum"] == sum(range(8))

    def test_max_reduce(self):
        n = 2
        result = {}

        def program(proc: Proc):
            out = yield from reduce(proc, n, root=0, value=proc.rank * 7 % 5, op=max)
            if out is not None:
                result["max"] = out

        machine(n).run(program)
        assert result["max"] == max(r * 7 % 5 for r in range(4))

    def test_allreduce_everywhere(self):
        n = 3
        got = {}

        def program(proc: Proc):
            got[proc.rank] = yield from allreduce(proc, n, value=1, op=operator.add)

        machine(n).run(program)
        assert all(v == 8 for v in got.values())
        assert len(got) == 8


class TestBarrier:
    def test_barrier_synchronizes_clocks(self):
        n = 2
        m = machine(n, t_element=1.0)

        def program(proc: Proc):
            yield proc.compute(proc.rank * 100)  # rank 3 is slowest
            yield from barrier(proc, n)
            # after the barrier everyone is at least at rank 3's time
            assert proc.clock >= 300.0

        m.run(program)

    def test_barrier_completes(self):
        n = 3
        done = []

        def program(proc: Proc):
            yield from barrier(proc, n)
            done.append(proc.rank)

        machine(n).run(program)
        assert sorted(done) == list(range(8))


class TestCollectivesWithFaults:
    def test_broadcast_rooted_away_from_partial_fault(self):
        # A partial fault forwards traffic; collectives over the remaining
        # programs still work when the faulty rank is excluded.
        n = 3
        fs = FaultSet(n, [5], kind=FaultKind.PARTIAL)
        received = {}

        def program(proc: Proc):
            # A reduced cube: only fault-free ranks participate; we use a
            # 2-dim subtree rooted at 0 covering ranks 0..3.
            value = yield from broadcast(proc, 2, root=0, payload="v", size=1)
            received[proc.rank] = value

        SpmdMachine(n, faults=fs, params=MachineParams.unit()).run(
            {rank: program for rank in range(4)}
        )
        assert received == {0: "v", 1: "v", 2: "v", 3: "v"}
