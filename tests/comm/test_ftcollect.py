"""Tests for repro.comm.ftcollect — fault-tolerant tree collectives."""

from __future__ import annotations

import pytest

from repro.comm.ftcollect import fault_free_bfs_tree, tree_gather, tree_scatter
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams
from repro.simulator.spmd import Proc, SpmdMachine


def machine(n, faults=None):
    return SpmdMachine(n, faults=faults, params=MachineParams.unit())


class TestSpanningTree:
    def test_fault_free_spans_cube(self):
        tree = fault_free_bfs_tree(FaultSet(3), root=0)
        assert tree.members() == frozenset(range(8))
        assert tree.root == 0
        assert 0 not in tree.parent

    def test_tree_edges_are_neighbors(self):
        tree = fault_free_bfs_tree(FaultSet(4, [3, 9]), root=0)
        for child, par in tree.parent.items():
            assert ((child ^ par) & ((child ^ par) - 1)) == 0

    def test_excludes_faulty(self, rng):
        for _ in range(20):
            n = int(rng.integers(3, 6))
            r = int(rng.integers(1, n))
            fs = FaultSet(n, random_faulty_processors(n, r, rng), kind=FaultKind.TOTAL)
            root = fs.fault_free_processors()[0]
            tree = fault_free_bfs_tree(fs, root)
            assert tree.members() == frozenset(fs.fault_free_processors())

    def test_partial_faults_not_relayed_through(self):
        # Even under the partial model the tree avoids faulty *nodes* as
        # members (they run no program); routing below may still pass them.
        fs = FaultSet(3, [5], kind=FaultKind.PARTIAL)
        tree = fault_free_bfs_tree(fs, root=0)
        assert 5 not in tree.members()

    def test_link_faults_avoided(self):
        fs = FaultSet(2, links=[(0, 1)])
        tree = fault_free_bfs_tree(fs, root=0)
        # 1 must hang off 3 (or via 2-3), not off 0 directly
        assert tree.parent[1] != 0

    def test_faulty_root_rejected(self):
        with pytest.raises(ValueError):
            fault_free_bfs_tree(FaultSet(3, [2]), root=2)

    def test_subtree_consistency(self):
        tree = fault_free_bfs_tree(FaultSet(4, [7]), root=0)
        for rank, ch in tree.children.items():
            expected = frozenset({rank}).union(*(tree.subtree[c] for c in ch)) \
                if ch else frozenset({rank})
            assert tree.subtree[rank] == expected


class TestTreeScatterGather:
    def test_scatter_delivers_chunks(self, rng):
        fs = FaultSet(3, [6], kind=FaultKind.TOTAL)
        tree = fault_free_bfs_tree(fs, root=0)
        got = {}

        def program(proc: Proc):
            chunks = {r: r * 10 for r in tree.members()} if proc.rank == 0 else None
            got[proc.rank] = yield from tree_scatter(proc, tree, chunks)

        machine(3, fs).run({rank: program for rank in tree.members()})
        assert got == {r: r * 10 for r in tree.members()}

    def test_gather_collects_everything(self, rng):
        fs = FaultSet(3, [1, 2], kind=FaultKind.PARTIAL)
        root = 0
        tree = fault_free_bfs_tree(fs, root)
        result = {}

        def program(proc: Proc):
            out = yield from tree_gather(proc, tree, value=proc.rank + 100)
            if out is not None:
                result.update(out)

        machine(3, fs).run({rank: program for rank in tree.members()})
        assert result == {r: r + 100 for r in tree.members()}

    def test_scatter_then_gather_roundtrip(self, rng):
        fs = FaultSet(4, random_faulty_processors(4, 3, rng), kind=FaultKind.TOTAL)
        root = fs.fault_free_processors()[0]
        tree = fault_free_bfs_tree(fs, root)
        echoed = {}

        def program(proc: Proc):
            chunks = (
                {r: f"payload-{r}" for r in tree.members()}
                if proc.rank == root
                else None
            )
            mine = yield from tree_scatter(proc, tree, chunks)
            out = yield from tree_gather(proc, tree, value=mine)
            if out is not None:
                echoed.update(out)

        machine(4, fs).run({rank: program for rank in tree.members()})
        assert echoed == {r: f"payload-{r}" for r in tree.members()}

    def test_missing_chunks_give_none(self):
        tree = fault_free_bfs_tree(FaultSet(2), root=0)
        got = {}

        def program(proc: Proc):
            chunks = {1: "only"} if proc.rank == 0 else None
            got[proc.rank] = yield from tree_scatter(proc, tree, chunks)

        machine(2).run({rank: program for rank in tree.members()})
        assert got[1] == "only"
        assert got[0] is None and got[2] is None and got[3] is None
