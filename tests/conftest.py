"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.params import MachineParams


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG; reseeded per test function."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def unit_params() -> MachineParams:
    """Unit cost constants so durations equal raw operation counts."""
    return MachineParams.unit()


def assert_sorted_output(result, keys):
    """Common oracle: result.sorted_keys equals numpy's sort of the input."""
    expected = np.sort(np.asarray(keys, dtype=float), kind="stable")
    np.testing.assert_array_equal(result.sorted_keys, expected)
