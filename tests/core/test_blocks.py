"""Tests for repro.core.blocks — padding and chunking helpers."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.blocks import PAD_KEY, pad_and_chunk, strip_padding


class TestPadAndChunk:
    def test_exact_division(self):
        chunks, block = pad_and_chunk(np.arange(8.0), 4)
        assert block == 2
        assert [c.tolist() for c in chunks] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_padding_fills_tail(self):
        chunks, block = pad_and_chunk(np.arange(5.0), 3)
        assert block == 2
        flat = np.concatenate(chunks)
        assert flat[:5].tolist() == [0, 1, 2, 3, 4]
        assert np.isinf(flat[5:]).all()

    def test_paper_figure6_distribution(self):
        # 47 keys over 24 workers: blocks of 2, one dummy key.
        chunks, block = pad_and_chunk(np.arange(47.0), 24)
        assert block == 2
        assert sum(np.isinf(c).sum() for c in chunks) == 1

    def test_empty_keys(self):
        chunks, block = pad_and_chunk([], 4)
        assert block == 0
        assert all(c.size == 0 for c in chunks)

    def test_fewer_keys_than_workers(self):
        chunks, block = pad_and_chunk([1.0, 2.0], 5)
        assert block == 1
        assert sum(np.isinf(c).sum() for c in chunks) == 3

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            pad_and_chunk([1.0], 0)

    def test_rejects_inf_keys(self):
        with pytest.raises(ValueError):
            pad_and_chunk([1.0, PAD_KEY], 2)

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            pad_and_chunk(np.zeros((2, 2)), 2)

    @given(
        st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=100),
        st.integers(1, 16),
    )
    def test_roundtrip_property(self, keys, workers):
        chunks, block = pad_and_chunk(keys, workers)
        assert len(chunks) == workers
        assert all(c.size == block for c in chunks)
        flat = np.concatenate(chunks) if chunks else np.empty(0)
        finite = flat[np.isfinite(flat)]
        assert sorted(finite.tolist()) == sorted(float(k) for k in keys)


class TestStripPadding:
    def test_strips_tail(self):
        out = strip_padding(np.array([1.0, 2.0, np.inf, np.inf]), 2)
        assert out.tolist() == [1.0, 2.0]

    def test_noop_when_exact(self):
        out = strip_padding(np.array([1.0, 2.0]), 2)
        assert out.tolist() == [1.0, 2.0]

    def test_detects_misplaced_real_keys(self):
        with pytest.raises(ValueError):
            strip_padding(np.array([1.0, np.inf, 2.0]), 1)

    def test_detects_short_output(self):
        with pytest.raises(ValueError):
            strip_padding(np.array([1.0]), 2)
