"""Tests for repro.core.cost — the paper's closed-form model."""

from __future__ import annotations

import pytest

from repro.core.cost import (
    paper_worst_case_time,
    partition_work_bound,
    utilization_max_subcube,
    utilization_proposed,
)
from repro.simulator.params import MachineParams


class TestWorstCaseTime:
    def test_zero_keys(self):
        assert paper_worst_case_time(0, 6, 2) == 0.0

    def test_monotone_in_keys(self):
        p = MachineParams.unit()
        t1 = paper_worst_case_time(10_000, 6, 2, p)
        t2 = paper_worst_case_time(20_000, 6, 2, p)
        assert t2 > t1

    def test_monotone_in_mincut(self):
        # More cutting dimensions -> more inter-subcube stages -> more time.
        p = MachineParams.unit()
        ts = [paper_worst_case_time(50_000, 6, m, p) for m in (1, 2, 3)]
        assert ts[0] < ts[1] < ts[2]

    def test_fault_free_reduces_to_heap_plus_bitonic(self):
        # m = 0: no inter-subcube term.
        p = MachineParams(t_compare=1.0, t_element=0.0, t_startup=0.0)
        n, m_keys = 4, 16 * 8
        t = paper_worst_case_time(m_keys, n, 0, p)
        # heapsort + intra comparisons only; with t_sr = 0 this is pure t_c.
        assert t > 0

    def test_worst_case_dominates_simulated_time(self, rng):
        # The closed form is a worst case: simulated runs (with probes and
        # startup excluded from the formula) must not exceed it wildly; we
        # check the formula is an upper bound on the comparison+transfer
        # accounting without startup.
        from repro.core.ftsort import fault_tolerant_sort

        keys = rng.random(24_000)
        p = MachineParams(t_compare=10.0, t_element=10.0, t_startup=0.0)
        res = fault_tolerant_sort(keys, 5, [3, 5, 16, 24], params=p)
        bound = paper_worst_case_time(24_000, 5, res.selection.m, p)
        assert res.elapsed <= bound

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            paper_worst_case_time(-1, 4, 1)
        with pytest.raises(ValueError):
            paper_worst_case_time(10, 4, 5)


class TestPartitionWork:
    def test_formula(self):
        assert partition_work_bound(5, 4) == 4 * 31

    def test_zero_faults(self):
        assert partition_work_bound(5, 0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            partition_work_bound(5, -1)


class TestUtilization:
    def test_paper_n6_r4_best(self):
        # m = 2: (64 - 4) / (64 - 4) = 100%.
        assert utilization_proposed(6, 4, 2) == pytest.approx(1.0)

    def test_paper_n6_r4_worst(self):
        # m = 3: (64 - 8) / 60 = 93.3%.
        assert utilization_proposed(6, 4, 3) == pytest.approx(56 / 60)

    def test_paper_baseline_n6_r4(self):
        assert utilization_max_subcube(6, 4, 5) == pytest.approx(32 / 60)  # 53.3%
        assert utilization_max_subcube(6, 4, 4) == pytest.approx(16 / 60)  # 26.6%

    def test_no_partition_full_utilization(self):
        assert utilization_proposed(5, 1, 0) == 1.0

    def test_rejects_all_faulty(self):
        with pytest.raises(ValueError):
            utilization_proposed(2, 4, 1)

    def test_subcube_dim_range(self):
        with pytest.raises(ValueError):
            utilization_max_subcube(4, 1, 5)

    def test_proposed_beats_baseline_everywhere(self, rng):
        # The paper's headline: for every feasible (n, r, mincut) and the
        # corresponding best-possible baseline subcube, proposed >= baseline.
        from repro.baselines.maxsubcube import max_fault_free_dim
        from repro.core.partition import find_min_cuts
        from repro.faults.inject import random_faulty_processors

        for _ in range(40):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(1, n))
            faults = random_faulty_processors(n, r, rng)
            mincut = find_min_cuts(n, faults).mincut
            sub = max_fault_free_dim(n, faults)
            assert utilization_proposed(n, r, mincut) >= utilization_max_subcube(n, r, sub)
