"""Edge-case and regression tests across the core algorithms.

Each test here pins down a boundary the main suites cross only
incidentally: extreme fault counts, degenerate key distributions, subcube
dimension extremes, and the specific regressions found while building the
implementation (documented inline).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.core.partition import find_min_cuts
from repro.core.selection import select_cut_sequence
from repro.core.single_fault import single_fault_bitonic_sort
from repro.faults.model import FaultKind, FaultSet

from tests.conftest import assert_sorted_output


class TestExtremeFaultCounts:
    def test_n_minus_1_faults_every_small_cube(self, rng):
        for n in (3, 4, 5):
            for _ in range(3):
                faults = rng.choice(1 << n, size=n - 1, replace=False).tolist()
                keys = rng.random(50)
                res = fault_tolerant_sort(keys, n, [int(f) for f in faults])
                assert_sorted_output(res, keys)

    def test_half_machine_faulty_when_separable(self, rng):
        # r = N/4 faults, one per Q_2 block: mincut = n-2 exactly, every
        # subcube a Q_2 with one dead — the paper's worst-case structure.
        n = 4
        faults = [0, 4, 8, 12]  # one per dim-(2,3) block
        res = find_min_cuts(n, faults)
        assert res.mincut == 2
        keys = rng.random(40)
        out = fault_tolerant_sort(keys, n, faults)
        assert_sorted_output(out, keys)
        assert out.working_processors == 12

    def test_s_equals_1_subcubes(self, rng):
        # Beyond the paper's bound: faults forcing Q_1 subcubes (one
        # worker each) still sort.
        faults = [0, 3, 7]  # Q_3: mincut 2 -> s = 1, nobody isolated
        res = find_min_cuts(3, faults)
        assert res.mincut == 2
        keys = rng.random(17)
        out = fault_tolerant_sort(keys, 3, faults)
        assert_sorted_output(out, keys)


class TestDegenerateKeys:
    def test_single_key_multi_fault(self):
        res = fault_tolerant_sort([42.0], 5, [3, 5, 16, 24])
        assert res.sorted_keys.tolist() == [42.0]

    def test_fewer_keys_than_workers(self, rng):
        keys = rng.random(5)
        res = fault_tolerant_sort(keys, 5, [3, 5, 16, 24])  # 24 workers
        assert_sorted_output(res, keys)

    def test_all_identical_keys(self):
        keys = np.full(100, 3.14)
        res = fault_tolerant_sort(keys, 4, [1, 6])
        assert (res.sorted_keys == 3.14).all()

    def test_two_value_alternation(self):
        keys = np.array([1.0, 0.0] * 50)
        res = fault_tolerant_sort(keys, 4, [1, 6])
        assert res.sorted_keys.tolist() == sorted(keys.tolist())

    def test_denormal_floats(self):
        keys = np.array([5e-324, 0.0, -5e-324, 1.0, -1.0] * 4)
        res = fault_tolerant_sort(keys, 3, [2])
        np.testing.assert_array_equal(res.sorted_keys, np.sort(keys))


class TestSelectionCorners:
    def test_all_faults_same_w(self):
        # Faults share their local address under the cut: every h_i is 0
        # and the dangling vote is unanimous.
        faults = [0b000, 0b001]  # Q_3, D=(0,) -> both w = 00
        sel = select_cut_sequence(find_min_cuts(3, faults))
        assert sel.cost == 0
        assert sel.dangling_w == 0

    def test_unique_minimal_cut(self):
        # Faults 0 and 1 differ only in bit 0: Psi = {(0,)} exactly.
        res = find_min_cuts(4, [0, 1])
        assert res.cutting_set == ((0,),)

    def test_many_equal_cost_sequences_tie_break(self):
        # Antipodal pair: every single dim separates, all costs equal;
        # the first (lexicographically smallest) wins.
        res = find_min_cuts(4, [0, 15])
        sel = select_cut_sequence(res)
        assert len(res.cutting_set) == 4
        assert sel.cut_dims == (0,)


class TestRegressions:
    def test_dead_at_top_is_not_exact(self):
        """Regression: an ascending network with the dead node at the TOP
        logical position mis-sorts (the sentinel argument fails there);
        the implementation must reject that configuration."""
        from repro.simulator.params import MachineParams
        from repro.simulator.phases import PhaseMachine
        from repro.sorting.bitonic_cube import block_bitonic_sort

        m = PhaseMachine(2, params=MachineParams.unit())
        for addr, block in [(0, [1.0]), (1, [2.0]), (2, [3.0])]:
            m.set_block(addr, np.array(block))
        with pytest.raises(ValueError, match="logical address 0"):
            block_bitonic_sort(m, [0, 1, 2, 3], dead_logical={3})

    def test_merge_only_step8_was_wrong(self, rng):
        """Regression: replacing Step 8 by a single target-direction merge
        breaks sorting (the valley + wrong sentinel case).  The shipped
        two-merge mode must not."""
        keys = rng.integers(0, 100, size=60).astype(float)
        res = fault_tolerant_sort(keys, 3, [0, 7])
        assert_sorted_output(res, keys)

    def test_probe_tie_keys_skip_correctly(self):
        """Regression guard: boundary probe with equal boundary keys must
        treat the pair as already split (<=, not <)."""
        from repro.simulator.params import MachineParams
        from repro.simulator.phases import PhaseMachine
        from repro.sorting.bitonic_cube import exchange_pair

        m = PhaseMachine(1, params=MachineParams.unit())
        m.set_block(0, np.array([1.0, 2.0]))
        m.set_block(1, np.array([2.0, 3.0]))
        with m.phase("x") as rec:
            exchange_pair(m, 0, 1, low_keeps_min=True)
        assert rec.elements_sent == 2  # probe only
        assert m.get_block(0).tolist() == [1.0, 2.0]

    def test_figure6_padding_count(self, rng):
        """Regression: 47 keys on 24 workers must pad with exactly one
        dummy (the paper's Fig. 6 walkthrough)."""
        keys = rng.random(47)
        res = fault_tolerant_sort(keys, 5, [3, 5, 16, 24])
        total_stored = sum(
            res.machine.get_block(a).size for a in res.output_order
        )
        assert total_stored == 48

    def test_total_fault_unreachable_pair_raises_not_hangs(self):
        """Total faults that disconnect the cube must fail loudly."""
        fs = FaultSet(2, [1, 2], kind=FaultKind.TOTAL)
        from repro.simulator.phases import PhaseMachine

        m = PhaseMachine(2, faults=fs)
        with pytest.raises(ValueError, match="unreachable"):
            m.hops(0, 3)
