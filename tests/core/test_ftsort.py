"""Tests for repro.core.ftsort — the full fault-tolerant sorting algorithm."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ftsort import fault_tolerant_sort, plan_partition
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams

from tests.conftest import assert_sorted_output

PAPER_FAULTS = [3, 5, 16, 24]


class TestDispatch:
    def test_zero_faults_plain_sort(self, rng):
        keys = rng.random(40)
        res = fault_tolerant_sort(keys, 3, [])
        assert_sorted_output(res, keys)
        assert res.partition is None and res.selection is None
        assert res.working_processors == 8

    def test_one_fault_single_fault_path(self, rng):
        keys = rng.random(40)
        res = fault_tolerant_sort(keys, 3, [5])
        assert_sorted_output(res, keys)
        assert res.partition is not None and res.partition.mincut == 0
        assert res.selection is None
        assert res.working_processors == 7

    def test_multi_fault_partition_path(self, rng):
        keys = rng.random(40)
        res = fault_tolerant_sort(keys, 4, [1, 2, 12])
        assert_sorted_output(res, keys)
        assert res.selection is not None
        assert res.partition.mincut == res.selection.m

    def test_too_many_faults_rejected(self):
        # Q_2 with faults 1, 2 isolates node 0: violates the model.
        with pytest.raises(ValueError):
            fault_tolerant_sort([1.0], 2, [1, 2])

    def test_r_equal_n_allowed_when_no_isolation(self, rng):
        # Section 2.2's closing remark: r >= n is fine if nobody is
        # surrounded.
        keys = rng.random(30)
        res = fault_tolerant_sort(keys, 3, [0, 3, 7])
        assert_sorted_output(res, keys)

    def test_bad_step8_mode_rejected(self):
        with pytest.raises(ValueError):
            fault_tolerant_sort([1.0], 3, [1, 2], step8="magic")


class TestPaperScenario:
    """The running example of the paper: Q_5 with faults {3, 5, 16, 24}."""

    def test_figure6_scenario_47_keys(self, rng):
        # 47 keys over N' = 24 working processors: ceil -> 2 per processor,
        # 6 per subcube, exactly the Fig. 6 walkthrough.
        keys = rng.integers(0, 1000, size=47).astype(float)
        res = fault_tolerant_sort(keys, 5, PAPER_FAULTS)
        assert_sorted_output(res, keys)
        assert res.block_size == 2
        assert res.selection.cut_dims == (0, 1, 3)
        assert res.selection.dangling_processors == (18, 25, 26, 27)
        assert len(res.output_order) == 24

    def test_output_order_subcube_major(self, rng):
        res = fault_tolerant_sort(rng.random(48), 5, PAPER_FAULTS)
        split = res.selection.split
        vs = [split.v_of(a) for a in res.output_order]
        assert vs == sorted(vs)

    def test_dead_processors_hold_nothing(self, rng):
        res = fault_tolerant_sort(rng.random(48), 5, PAPER_FAULTS)
        for dead in res.selection.dead_of_subcube:
            assert res.machine.get_block(dead).size == 0

    def test_blocks_form_global_sorted_sequence(self, rng):
        keys = rng.random(96)
        res = fault_tolerant_sort(keys, 5, PAPER_FAULTS)
        expected = np.sort(keys)
        k = res.block_size
        for i, addr in enumerate(res.output_order):
            np.testing.assert_array_equal(
                res.machine.get_block(addr), expected[i * k : (i + 1) * k]
            )

    def test_forced_cut_dims(self, rng):
        keys = rng.random(48)
        res = fault_tolerant_sort(keys, 5, PAPER_FAULTS, cut_dims=(2, 3, 4))
        assert_sorted_output(res, keys)
        assert res.selection.cut_dims == (2, 3, 4)

    def test_forced_cut_dims_must_be_minimal(self):
        with pytest.raises(ValueError):
            fault_tolerant_sort([1.0], 5, PAPER_FAULTS, cut_dims=(0, 1, 2, 3))


class TestCorrectnessSweep:
    @pytest.mark.parametrize("n", [3, 4, 5, 6])
    def test_random_faults_and_keys(self, n, rng):
        for r in range(0, n):
            for _ in range(4):
                faults = random_faulty_processors(n, r, rng)
                m_keys = int(rng.integers(1, 200))
                keys = rng.integers(0, 10**6, size=m_keys).astype(float)
                res = fault_tolerant_sort(keys, n, list(faults))
                assert_sorted_output(res, keys)

    def test_both_step8_modes_agree(self, rng):
        keys = rng.random(60)
        a = fault_tolerant_sort(keys, 4, [1, 6, 11], step8="two-merge")
        b = fault_tolerant_sort(keys, 4, [1, 6, 11], step8="full-sort")
        np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)

    def test_two_merge_faster_on_large_subcubes(self, rng):
        # 2s substages beat s(s+1)/2 once s > 3; with s = 5 and sizeable
        # blocks the two-merge Step 8 must win clearly.
        keys = rng.random(32 * 400)
        a = fault_tolerant_sort(keys, 6, [0, 63], step8="two-merge")
        b = fault_tolerant_sort(keys, 6, [0, 63], step8="full-sort")
        assert a.elapsed < b.elapsed

    def test_duplicate_keys(self, rng):
        keys = rng.integers(0, 4, size=100).astype(float)
        res = fault_tolerant_sort(keys, 4, [0, 5, 10])
        assert_sorted_output(res, keys)

    def test_tiny_inputs(self):
        for m in (1, 2, 3):
            keys = list(range(m, 0, -1))
            res = fault_tolerant_sort(keys, 4, [2, 9])
            assert res.sorted_keys.tolist() == sorted(float(k) for k in keys)

    def test_empty_input(self):
        res = fault_tolerant_sort([], 4, [2, 9])
        assert res.sorted_keys.size == 0

    def test_already_sorted_input(self, rng):
        keys = np.sort(rng.random(80))
        res = fault_tolerant_sort(keys, 4, [3, 12])
        assert_sorted_output(res, keys)

    def test_fault_set_object_accepted(self, rng):
        keys = rng.random(30)
        fs = FaultSet(4, [1, 6], kind=FaultKind.PARTIAL)
        res = fault_tolerant_sort(keys, 4, fs)
        assert_sorted_output(res, keys)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_sort_property(self, data):
        n = data.draw(st.integers(3, 5))
        r = data.draw(st.integers(2, n - 1))
        faults = data.draw(
            st.lists(st.integers(0, (1 << n) - 1), min_size=r, max_size=r, unique=True)
        )
        keys = data.draw(st.lists(st.integers(-999, 999), min_size=1, max_size=120))
        res = fault_tolerant_sort(keys, n, faults)
        assert res.sorted_keys.tolist() == sorted(float(k) for k in keys)


class TestFaultKinds:
    def test_total_faults_cost_at_least_partial(self, rng):
        # Section 4: total faults force detours, so execution time grows.
        keys = rng.random(2048)
        p = MachineParams.ncube7()
        faults = [0, 9, 20]
        partial = fault_tolerant_sort(keys, 5, faults, params=p, fault_kind=FaultKind.PARTIAL)
        total = fault_tolerant_sort(keys, 5, faults, params=p, fault_kind=FaultKind.TOTAL)
        assert_sorted_output(total, keys)
        assert total.elapsed >= partial.elapsed

    def test_total_fault_correctness_sweep(self, rng):
        for _ in range(10):
            n = int(rng.integers(3, 6))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            keys = rng.random(int(rng.integers(1, 150)))
            res = fault_tolerant_sort(keys, n, list(faults), fault_kind=FaultKind.TOTAL)
            assert_sorted_output(res, keys)


class TestPlanPartition:
    def test_returns_both_artifacts(self):
        part, sel = plan_partition(5, PAPER_FAULTS)
        assert part.mincut == 3
        assert sel.cut_dims in part.cutting_set

    def test_override_must_be_in_psi(self):
        with pytest.raises(ValueError):
            plan_partition(5, PAPER_FAULTS, cut_dims=(0, 1, 2))

    def test_override_respected(self):
        _, sel = plan_partition(5, PAPER_FAULTS, cut_dims=(1, 3, 4))
        assert sel.cut_dims == (1, 3, 4)


class TestCostAccounting:
    def test_elapsed_equals_phase_sum(self, rng):
        res = fault_tolerant_sort(rng.random(64), 5, PAPER_FAULTS)
        assert res.elapsed == pytest.approx(sum(p.duration for p in res.machine.phases))

    def test_inter_subcube_hops_reflect_reindex_distance(self, rng):
        # With the paper's faults, dead-w differ across some neighboring
        # subcubes, so some inter-phase transfers take > 1 hop.
        res = fault_tolerant_sort(
            rng.random(256), 5, PAPER_FAULTS, params=MachineParams.unit()
        )
        inter = [p for p in res.machine.phases if p.label.startswith("inter")]
        assert any(p.element_hops > p.elements_sent for p in inter)

    def test_intra_phases_single_hop(self, rng):
        res = fault_tolerant_sort(
            rng.random(256), 5, PAPER_FAULTS, params=MachineParams.unit()
        )
        intra = [p for p in res.machine.phases if p.label.startswith("intra")]
        assert all(p.element_hops == p.elements_sent for p in intra)

    def test_more_faults_generally_cost_more(self, rng):
        keys = rng.random(8192)
        p = MachineParams.ncube7()
        t1 = fault_tolerant_sort(keys, 5, [7], params=p).elapsed
        t3 = fault_tolerant_sort(keys, 5, [7, 9, 30], params=p).elapsed
        assert t3 > t1
