"""Tests for repro.core.partition — Section 2.2's partition algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.partition import (
    CheckingTree,
    find_min_cuts,
    is_single_fault_partition,
    max_dangling_bound,
)
from repro.cube.subcube import AddressSplit
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultSet


class TestFeasibility:
    def test_empty_cut_single_fault(self):
        assert is_single_fault_partition(4, (), [7])
        assert is_single_fault_partition(4, (), [])
        assert not is_single_fault_partition(4, (), [1, 2])

    def test_separating_dimension(self):
        # Faults 0 and 1 differ only in bit 0.
        assert is_single_fault_partition(3, (0,), [0, 1])
        assert not is_single_fault_partition(3, (1,), [0, 1])
        assert not is_single_fault_partition(3, (2,), [0, 1])

    def test_matches_direct_subcube_count(self):
        # Cross-check against literally counting faults per subcube.
        faults = [0, 6, 9, 15]
        for dims in [(0, 1), (1, 3), (0, 2, 3)]:
            split = AddressSplit(4, dims)
            counts: dict[int, int] = {}
            for f in faults:
                counts[split.v_of(f)] = counts.get(split.v_of(f), 0) + 1
            direct = all(c <= 1 for c in counts.values())
            assert is_single_fault_partition(4, dims, faults) == direct

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            is_single_fault_partition(3, (1, 1), [0, 5])

    def test_dim_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            is_single_fault_partition(3, (3,), [0])

    def test_accepts_fault_set(self):
        assert is_single_fault_partition(3, (0,), FaultSet(3, [0, 1]))


class TestCheckingTree:
    def test_paper_figure4(self):
        # Q_4 with faults {0, 6, 9}, D = (1, 3): root splits along dim 1
        # into {0, 9} / {6}, then along dim 3.
        tree = CheckingTree(4, (1, 3), [0, 6, 9])
        level1 = tree.levels[1]
        assert sorted(level1[0]) == [0, 9]
        assert sorted(level1[1]) == [6]
        assert tree.is_single_fault()
        leaves = tree.leaves()
        assert leaves[0b00] == [0]
        assert leaves[0b10] == [9]
        assert leaves[0b01] == [6]
        assert leaves[0b11] == []

    def test_infeasible_detected(self):
        tree = CheckingTree(4, (1,), [0, 6, 9])
        assert not tree.is_single_fault()

    def test_leaf_addresses_match_address_split(self):
        faults = [3, 5, 16, 24]
        dims = (0, 1, 3)
        tree = CheckingTree(5, dims, faults)
        split = AddressSplit(5, dims)
        for v, flist in tree.leaves().items():
            for f in flist:
                assert split.v_of(f) == v

    def test_agrees_with_fast_predicate(self, rng):
        for _ in range(60):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(0, n))
            faults = random_faulty_processors(n, r, rng)
            k = int(rng.integers(0, n + 1))
            dims = tuple(sorted(rng.choice(n, size=k, replace=False).tolist()))
            assert (
                CheckingTree(n, dims, faults).is_single_fault()
                == is_single_fault_partition(n, dims, faults)
            )


class TestFindMinCuts:
    def test_paper_example1(self):
        # Q_5, faults 00011, 00101, 10000, 11000: mincut 3 and the exact
        # cutting set of the paper.
        res = find_min_cuts(5, [0b00011, 0b00101, 0b10000, 0b11000])
        assert res.mincut == 3
        assert set(res.cutting_set) == {
            (0, 1, 3),
            (0, 2, 3),
            (1, 2, 3),
            (1, 3, 4),
            (2, 3, 4),
        }

    def test_zero_and_one_fault_trivial(self):
        assert find_min_cuts(4, []).mincut == 0
        res = find_min_cuts(4, [9])
        assert res.mincut == 0 and res.cutting_set == ((),)

    def test_two_faults_mincut_one(self, rng):
        # Any two distinct faults are separated by one of their differing
        # bits; mincut is always 1.
        for _ in range(30):
            faults = random_faulty_processors(5, 2, rng)
            res = find_min_cuts(5, faults)
            assert res.mincut == 1
            diff = faults[0] ^ faults[1]
            assert all(diff >> d & 1 for (d,) in res.cutting_set)

    def test_every_cutting_sequence_is_feasible_and_minimal(self, rng):
        for _ in range(30):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            res = find_min_cuts(n, faults)
            for dims in res.cutting_set:
                assert len(dims) == res.mincut
                assert is_single_fault_partition(n, dims, faults)
                # minimality: no proper subset is feasible
                for drop in range(len(dims)):
                    sub = dims[:drop] + dims[drop + 1 :]
                    assert not is_single_fault_partition(n, sub, faults) or not sub

    def test_cutting_set_is_complete(self, rng):
        # Brute-force all subsets of the minimal size and compare.
        from itertools import combinations

        for _ in range(20):
            n = int(rng.integers(3, 6))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            res = find_min_cuts(n, faults)
            brute = {
                dims
                for dims in combinations(range(n), res.mincut)
                if is_single_fault_partition(n, dims, faults)
            }
            assert set(res.cutting_set) == brute

    def test_mincut_bound_r_minus_1(self, rng):
        # Paper: r <= n-1 faults partition with at most r-1 <= n-2 cuts.
        for _ in range(60):
            n = int(rng.integers(3, 8))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            res = find_min_cuts(n, faults)
            assert res.mincut <= r - 1 <= n - 2

    def test_dangling_count_and_bound(self, rng):
        for _ in range(40):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            res = find_min_cuts(n, faults)
            assert res.dangling_count == res.num_subcubes - r
            assert res.dangling_count <= max_dangling_bound(n)

    def test_working_processors(self):
        res = find_min_cuts(6, [0, 1, 2])  # mincut 2 here (0,1 and 2 split)
        assert res.working_processors == 64 - res.num_subcubes

    def test_adjacent_fault_chain_worst_case(self):
        # n-1 faults packed in one subcube force larger cuts but never
        # beyond n-2 (paper's worst case).
        n = 5
        faults = [0b00000, 0b00001, 0b00010, 0b00100]
        res = find_min_cuts(n, faults)
        assert res.mincut <= n - 2

    def test_max_depth_too_small_raises(self):
        with pytest.raises(ValueError):
            find_min_cuts(4, [0, 1, 2, 3], max_depth=1)

    def test_duplicate_fault_addresses_deduped(self):
        res = find_min_cuts(4, [3, 3, 3])
        assert res.mincut == 0

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_partition_property(self, data):
        n = data.draw(st.integers(3, 7))
        r = data.draw(st.integers(2, n - 1))
        faults = data.draw(
            st.lists(st.integers(0, (1 << n) - 1), min_size=r, max_size=r, unique=True)
        )
        res = find_min_cuts(n, faults)
        # every returned cut yields <= 1 fault per subcube
        for dims in res.cutting_set:
            split = AddressSplit(n, dims)
            per_v: dict[int, int] = {}
            for f in faults:
                per_v[split.v_of(f)] = per_v.get(split.v_of(f), 0) + 1
            assert max(per_v.values()) <= 1
