"""Tests for repro.core.partition_fast — vectorized batch mincut."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import find_min_cuts
from repro.core.partition_fast import mincut_batch, mincut_distribution_fast
from repro.faults.inject import random_faulty_processors


class TestMincutBatch:
    def test_matches_dfs_exhaustively_small(self):
        # every 2-fault placement on Q_3
        rows = [
            (a, b) for a in range(8) for b in range(8) if a < b
        ]
        batch = mincut_batch(3, np.array(rows))
        for row, got in zip(rows, batch):
            assert got == find_min_cuts(3, list(row)).mincut

    def test_matches_dfs_random(self, rng):
        for n in (4, 5, 6):
            for r in (2, 3, n - 1):
                rows = [random_faulty_processors(n, r, rng) for _ in range(50)]
                batch = mincut_batch(n, np.array(rows))
                for row, got in zip(rows, batch):
                    assert got == find_min_cuts(n, list(row)).mincut, (n, row)

    def test_r_le_1_zero(self):
        assert mincut_batch(4, np.array([[3]])).tolist() == [0]
        assert mincut_batch(4, np.zeros((5, 0), dtype=int)).tolist() == [0] * 5

    def test_empty_trials(self):
        assert mincut_batch(4, np.zeros((0, 3), dtype=int)).size == 0

    def test_duplicate_faults_rejected(self):
        with pytest.raises(ValueError):
            mincut_batch(3, np.array([[1, 1]]))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            mincut_batch(3, np.array([[1, 8]]))

    def test_1d_rejected(self):
        with pytest.raises(ValueError):
            mincut_batch(3, np.array([1, 2]))

    def test_paper_example1_row(self):
        batch = mincut_batch(5, np.array([[3, 5, 16, 24]]))
        assert batch.tolist() == [3]


class TestDistributionFast:
    def test_matches_slow_distribution(self):
        from repro.experiments.table1 import compute_table1

        fast = mincut_distribution_fast(6, 5, trials=4000, rng=77)
        slow = compute_table1(ns=(6,), trials=4000, seed=77)
        cell = next(c for c in slow if c.r == 5)
        # Different sampling streams: agreement within Monte-Carlo noise.
        for m, pct in fast.items():
            assert abs(cell.percent(m) - pct) < 3.0, (m, pct, cell.percent(m))

    def test_r0(self):
        assert mincut_distribution_fast(4, 0, trials=10) == {0: 100.0}

    def test_placements_are_distinct_samples(self):
        # sampling-without-replacement sanity: no crash over many draws
        out = mincut_distribution_fast(3, 2, trials=2000, rng=1)
        assert out == {1: 100.0}

    def test_percentages_sum(self):
        out = mincut_distribution_fast(6, 5, trials=1000, rng=3)
        assert sum(out.values()) == pytest.approx(100.0)

    def test_structural_exactness_n5_r4(self):
        out = mincut_distribution_fast(5, 4, trials=3000, rng=5)
        assert set(out) == {2, 3}


class TestSpeed:
    def test_batch_is_much_faster_than_dfs(self, rng):
        import time

        rows = np.array([random_faulty_processors(6, 5, rng) for _ in range(2000)])
        t0 = time.perf_counter()
        mincut_batch(6, rows)
        fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        for row in rows[:200]:
            find_min_cuts(6, list(row))
        slow_per = (time.perf_counter() - t0) / 200
        # conservative: vectorized must beat 2000x the per-DFS time by 5x+
        assert fast < 2000 * slow_per / 5
