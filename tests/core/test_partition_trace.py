"""Tests for repro.core.partition_trace — the Figure-2 DFS trace."""

from __future__ import annotations

import pytest

from repro.core.partition import find_min_cuts
from repro.core.partition_trace import render_cutting_tree, trace_cutting_tree
from repro.faults.inject import random_faulty_processors

PAPER_FAULTS = [3, 5, 16, 24]


class TestTrace:
    def test_trace_agrees_with_find_min_cuts(self, rng):
        for _ in range(20):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            visits = trace_cutting_tree(n, faults)
            feasible = [v.dims for v in visits if v.verdict == "feasible"]
            ref = find_min_cuts(n, faults)
            m = min(len(d) for d in feasible)
            assert m == ref.mincut
            assert {d for d in feasible if len(d) == m} == set(ref.cutting_set)

    def test_paper_example1_trace(self):
        visits = trace_cutting_tree(5, PAPER_FAULTS)
        feasible = {v.dims for v in visits if v.verdict == "feasible"}
        minimal = {d for d in feasible if len(d) == 3}
        assert minimal == {(0, 1, 3), (0, 2, 3), (1, 2, 3), (1, 3, 4), (2, 3, 4)}

    def test_node_budget_respects_paper_bound(self, rng):
        # The tree has at most 2^n - 1 nodes; pruning visits far fewer.
        for _ in range(10):
            n = int(rng.integers(3, 7))
            faults = random_faulty_processors(n, n - 1, rng)
            visits = trace_cutting_tree(n, faults)
            assert 0 < len(visits) <= (1 << n) - 1

    def test_no_descent_below_feasible(self):
        # A feasible node is a leaf: no visit extends a feasible prefix.
        visits = trace_cutting_tree(5, PAPER_FAULTS)
        feasible = [v.dims for v in visits if v.verdict == "feasible"]
        for v in visits:
            for f in feasible:
                assert not (len(v.dims) > len(f) and v.dims[: len(f)] == f)

    def test_cutoffs_only_at_or_past_mincut(self):
        visits = trace_cutting_tree(5, PAPER_FAULTS)
        for v in visits:
            if v.verdict == "cutoff":
                assert len(v.dims) >= v.mincut_at_visit

    def test_single_fault_empty_trace(self):
        assert trace_cutting_tree(4, [7]) == []


class TestRender:
    def test_render_paper_example(self):
        out = render_cutting_tree(5, PAPER_FAULTS)
        assert "mincut = 3" in out
        assert "[0, 1, 3]" in out
        assert "feasible" in out

    def test_render_trivial(self):
        out = render_cutting_tree(4, [2])
        assert "no partition needed" in out

    def test_render_shows_cutoffs(self):
        # Densely packed faults force cutoffs once mincut is known.
        out = render_cutting_tree(5, [0, 1, 2, 4])
        assert "cutoff" in out
