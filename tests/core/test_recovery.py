"""Tests for repro.core.recovery — mid-run fault arrival (extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.recovery import sort_with_midrun_fault
from repro.faults.inject import random_faulty_processors

from tests.conftest import assert_sorted_output


class TestMidrunRecovery:
    def test_result_correct(self, rng):
        keys = rng.integers(0, 1000, size=300).astype(float)
        report = sort_with_midrun_fault(keys, 5, [3, 5], victim=10, strike_phase=4)
        assert_sorted_output(report, keys)

    def test_report_anatomy(self, rng):
        keys = rng.integers(0, 1000, size=300).astype(float)
        report = sort_with_midrun_fault(keys, 5, [3, 5], victim=10, strike_phase=4)
        assert report.wasted_time > 0
        assert report.rescue_time > 0
        assert report.redistribution_time > 0
        assert report.total_time == pytest.approx(
            report.wasted_time
            + report.rescue_time
            + report.redistribution_time
            + report.resort.elapsed
        )
        assert report.overhead_vs_oracle > 1.0

    def test_late_strike_costs_more(self, rng):
        keys = rng.integers(0, 1000, size=400).astype(float)
        early = sort_with_midrun_fault(keys, 5, [3], victim=9, strike_phase=0)
        late = sort_with_midrun_fault(keys, 5, [3], victim=9, strike_phase=10)
        assert late.wasted_time > early.wasted_time
        assert late.total_time > early.total_time

    def test_victim_from_fault_free_start(self, rng):
        # The sort was running fault-free; the first fault ever strikes.
        keys = rng.integers(0, 500, size=128).astype(float)
        report = sort_with_midrun_fault(keys, 4, [], victim=7, strike_phase=2)
        assert_sorted_output(report, keys)
        assert report.resort.partition is not None

    def test_already_faulty_victim_rejected(self):
        with pytest.raises(ValueError):
            sort_with_midrun_fault([1.0], 4, [7], victim=7, strike_phase=0)

    def test_model_violation_rejected(self):
        # Q_2 can only survive one fault.
        with pytest.raises(ValueError):
            sort_with_midrun_fault([1.0], 2, [1], victim=2, strike_phase=0)

    def test_bad_strike_phase_rejected(self, rng):
        keys = rng.random(40)
        with pytest.raises(ValueError):
            sort_with_midrun_fault(keys, 4, [], victim=3, strike_phase=10_000)

    def test_random_sweep(self, rng):
        for _ in range(6):
            n = int(rng.integers(4, 6))
            r = int(rng.integers(0, n - 2))
            faults = list(random_faulty_processors(n, r, rng))
            normal = [p for p in range(1 << n) if p not in faults]
            victim = int(rng.choice(normal[1:]))
            keys = rng.integers(0, 500, size=int(rng.integers(10, 200))).astype(float)
            report = sort_with_midrun_fault(
                keys, n, faults, victim=victim, strike_phase=int(rng.integers(0, 3))
            )
            assert_sorted_output(report, keys)
            assert report.resort.working_processors < (1 << n) - r + 1
