"""Tests for repro.core.schedule — static oblivious sort schedules."""

from __future__ import annotations

import pytest

from repro.core.ftsort import plan_partition
from repro.core.schedule import (
    CompiledSchedule,
    CxPair,
    SortSchedule,
    Substage,
    build_ft_schedule,
    build_plain_schedule,
    lower_schedule,
)
from repro.cube.address import hamming_distance
from repro.faults.inject import random_faulty_processors

PAPER_FAULTS = [3, 5, 16, 24]


class TestSubstage:
    def test_disjoint_pairs_enforced(self):
        with pytest.raises(ValueError):
            Substage("x", "cx", (CxPair(0, 1, True), CxPair(1, 2, True)))

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            Substage("x", "cx", (CxPair(3, 3, True),))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Substage("x", "teleport", ())

    def test_participants(self):
        s = Substage("x", "cx", (CxPair(0, 1, True), CxPair(4, 6, False)))
        assert s.participants() == {0, 1, 4, 6}

    def test_cx_pair_requires_real_orientation(self):
        # A cx comparator must say which side keeps the minima; the mirror
        # sentinel ``None`` is not a valid orientation for a comparison.
        with pytest.raises(ValueError, match="keep_min"):
            Substage("x", "cx", (CxPair(0, 1, None),))

    def test_mirror_pair_rejects_orientation(self):
        # Mirror swaps move data without comparing: an orientation flag on a
        # mirror pair would silently leak into comparison accounting.
        with pytest.raises(ValueError, match="keep_min"):
            Substage("x", "mirror", (CxPair(0, 1, True),))
        ok = Substage("x", "mirror", (CxPair(0, 1, None),))
        assert ok.pairs[0].keep_min is None


class TestPlainSchedule:
    def test_fault_free_structure(self):
        sch = build_plain_schedule(3)
        assert sch.workers == 8
        assert len(sch.substages) == 6  # 3*(3+1)/2
        assert sch.output_order == tuple(range(8))

    def test_comparator_count(self):
        # Each substage pairs all 2^n nodes: 2^(n-1) comparators.
        sch = build_plain_schedule(4)
        assert sch.comparator_count() == 10 * 8

    def test_single_fault_excludes_dead(self):
        sch = build_plain_schedule(3, faulty=5)
        assert 5 not in sch.output_order
        assert sch.workers == 7
        for s in sch.substages:
            assert 5 not in s.participants()

    def test_single_fault_reindexing(self):
        sch = build_plain_schedule(2, faulty=2)
        # logical order: l XOR 2 for l in 1..3
        assert sch.output_order == (3, 0, 1)

    def test_q0(self):
        sch = build_plain_schedule(0)
        assert sch.workers == 1 and sch.substages == ()

    def test_q0_with_fault_rejected(self):
        with pytest.raises(ValueError):
            build_plain_schedule(0, faulty=0)


class TestFtSchedule:
    def test_paper_scenario_structure(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        assert sch.workers == 24
        # dead processors appear nowhere
        dead = set(sel.dead_of_subcube)
        for s in sch.substages:
            assert not dead & s.participants()

    def test_output_order_subcube_major(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        split = sel.split
        vs = [split.v_of(a) for a in sch.output_order]
        assert vs == sorted(vs)

    def test_substage_kinds(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        kinds = {s.kind for s in sch.substages}
        assert kinds <= {"cx", "mirror"}
        assert any(s.kind == "mirror" for s in sch.substages)

    def test_inter_substage_count(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        inter = [s for s in sch.substages if s.label.startswith("inter")]
        m = sel.m
        assert len(inter) == m * (m + 1) // 2

    def test_inter_pairs_same_reindexed_address(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        split = sel.split
        dead_w = [split.w_of(d) for d in sel.dead_of_subcube]
        for s in sch.substages:
            if not s.label.startswith("inter"):
                continue
            for pr in s.pairs:
                va, vb = split.v_of(pr.low), split.v_of(pr.high)
                rho_a = split.w_of(pr.low) ^ dead_w[va]
                rho_b = split.w_of(pr.high) ^ dead_w[vb]
                assert rho_a == rho_b != 0

    def test_random_plans_build(self, rng):
        for _ in range(15):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            _, sel = plan_partition(n, list(faults))
            sch = build_ft_schedule(sel)
            assert sch.workers == sel.working_processors
            assert isinstance(sch, SortSchedule)


class TestHonestAccounting:
    """Mirror traffic is counted as traffic, never as comparisons."""

    def test_plain_schedule_has_no_mirror_pairs(self):
        assert build_plain_schedule(4).mirror_pair_count() == 0

    def test_ft_schedule_counts_mirror_pairs(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        mirror = sum(len(s.pairs) for s in sch.substages if s.kind == "mirror")
        assert mirror > 0
        assert sch.mirror_pair_count() == mirror
        # comparator_count covers cx pairs only — mirror swaps compare nothing.
        cx = sum(len(s.pairs) for s in sch.substages if s.kind == "cx")
        assert sch.comparator_count() == cx

    def test_worst_case_elements(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        k = 10
        cx = sch.comparator_count()
        mirror = sch.mirror_pair_count()
        # Per cx pair: 2 probe keys + 2 full blocks; per mirror pair: 2 blocks.
        assert sch.worst_case_elements(k) == cx * (2 + 2 * k) + mirror * 2 * k
        assert sch.worst_case_elements(0) == 0


class TestLowering:
    def test_plain_lowering_shape(self):
        sch = build_plain_schedule(3)
        prog = lower_schedule(sch)
        assert isinstance(prog, CompiledSchedule)
        assert prog.n == 3
        assert prog.workers == 8
        assert prog.output_order == sch.output_order
        assert len(prog.substages) == len(sch.substages)
        for sub, csub in zip(sch.substages, prog.substages):
            assert csub.label == sub.label
            assert csub.kind == sub.kind
            assert len(csub.a_rows) == len(csub.b_rows) == len(csub.hops) == len(sub.pairs)
            assert not csub.a_rows.flags.writeable
            assert (csub.hops == 1).all()  # plain substages are neighbor links

    def test_cx_rows_resolve_orientation(self):
        # a_rows is always the min-keeper, regardless of pair orientation.
        sch = SortSchedule(
            n=1,
            output_order=(0, 1),
            substages=(
                Substage("fw", "cx", (CxPair(0, 1, True),)),
                Substage("bw", "cx", (CxPair(0, 1, False),)),
            ),
        )
        prog = lower_schedule(sch)
        fw, bw = prog.substages
        assert (fw.a_rows.tolist(), fw.b_rows.tolist()) == ([0], [1])
        assert (bw.a_rows.tolist(), bw.b_rows.tolist()) == ([1], [0])

    def test_ft_lowering_uses_hop_oracle(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        prog = lower_schedule(sch, hops_of=hamming_distance)
        row = {addr: t for t, addr in enumerate(sch.output_order)}
        for sub, csub in zip(sch.substages, prog.substages):
            for i, pair in enumerate(sub.pairs):
                rows = {int(csub.a_rows[i]), int(csub.b_rows[i])}
                assert rows == {row[pair.low], row[pair.high]}
                if sub.uniform_hops is None:
                    assert int(csub.hops[i]) == hamming_distance(pair.low, pair.high)
                else:
                    assert int(csub.hops[i]) == sub.uniform_hops
