"""Tests for repro.core.schedule — static oblivious sort schedules."""

from __future__ import annotations

import pytest

from repro.core.ftsort import plan_partition
from repro.core.schedule import (
    CxPair,
    SortSchedule,
    Substage,
    build_ft_schedule,
    build_plain_schedule,
)
from repro.faults.inject import random_faulty_processors

PAPER_FAULTS = [3, 5, 16, 24]


class TestSubstage:
    def test_disjoint_pairs_enforced(self):
        with pytest.raises(ValueError):
            Substage("x", "cx", (CxPair(0, 1, True), CxPair(1, 2, True)))

    def test_self_pair_rejected(self):
        with pytest.raises(ValueError):
            Substage("x", "cx", (CxPair(3, 3, True),))

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            Substage("x", "teleport", ())

    def test_participants(self):
        s = Substage("x", "cx", (CxPair(0, 1, True), CxPair(4, 6, False)))
        assert s.participants() == {0, 1, 4, 6}


class TestPlainSchedule:
    def test_fault_free_structure(self):
        sch = build_plain_schedule(3)
        assert sch.workers == 8
        assert len(sch.substages) == 6  # 3*(3+1)/2
        assert sch.output_order == tuple(range(8))

    def test_comparator_count(self):
        # Each substage pairs all 2^n nodes: 2^(n-1) comparators.
        sch = build_plain_schedule(4)
        assert sch.comparator_count() == 10 * 8

    def test_single_fault_excludes_dead(self):
        sch = build_plain_schedule(3, faulty=5)
        assert 5 not in sch.output_order
        assert sch.workers == 7
        for s in sch.substages:
            assert 5 not in s.participants()

    def test_single_fault_reindexing(self):
        sch = build_plain_schedule(2, faulty=2)
        # logical order: l XOR 2 for l in 1..3
        assert sch.output_order == (3, 0, 1)

    def test_q0(self):
        sch = build_plain_schedule(0)
        assert sch.workers == 1 and sch.substages == ()

    def test_q0_with_fault_rejected(self):
        with pytest.raises(ValueError):
            build_plain_schedule(0, faulty=0)


class TestFtSchedule:
    def test_paper_scenario_structure(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        assert sch.workers == 24
        # dead processors appear nowhere
        dead = set(sel.dead_of_subcube)
        for s in sch.substages:
            assert not dead & s.participants()

    def test_output_order_subcube_major(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        split = sel.split
        vs = [split.v_of(a) for a in sch.output_order]
        assert vs == sorted(vs)

    def test_substage_kinds(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        kinds = {s.kind for s in sch.substages}
        assert kinds <= {"cx", "mirror"}
        assert any(s.kind == "mirror" for s in sch.substages)

    def test_inter_substage_count(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        inter = [s for s in sch.substages if s.label.startswith("inter")]
        m = sel.m
        assert len(inter) == m * (m + 1) // 2

    def test_inter_pairs_same_reindexed_address(self):
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        split = sel.split
        dead_w = [split.w_of(d) for d in sel.dead_of_subcube]
        for s in sch.substages:
            if not s.label.startswith("inter"):
                continue
            for pr in s.pairs:
                va, vb = split.v_of(pr.low), split.v_of(pr.high)
                rho_a = split.w_of(pr.low) ^ dead_w[va]
                rho_b = split.w_of(pr.high) ^ dead_w[vb]
                assert rho_a == rho_b != 0

    def test_random_plans_build(self, rng):
        for _ in range(15):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            _, sel = plan_partition(n, list(faults))
            sch = build_ft_schedule(sel)
            assert sch.workers == sel.working_processors
            assert isinstance(sch, SortSchedule)
