"""Tests for repro.core.selection — Eq. (1) and the dangling heuristic."""

from __future__ import annotations

import pytest

from repro.core.partition import find_min_cuts
from repro.core.selection import (
    choose_dangling_w,
    extra_comm_cost,
    fault_of_subcube,
    select_cut_sequence,
)
from repro.faults.inject import random_faulty_processors

PAPER_FAULTS = [0b00011, 0b00101, 0b10000, 0b11000]  # 3, 5, 16, 24


class TestExtraCommCost:
    def test_paper_example2_costs(self):
        # Eq. (1) costs for the five sequences of Example 1/2: 3, 3, 4, 3, 3.
        expected = {
            (0, 1, 3): 3,
            (0, 2, 3): 3,
            (1, 2, 3): 4,
            (1, 3, 4): 3,
            (2, 3, 4): 3,
        }
        for dims, cost in expected.items():
            assert extra_comm_cost(5, dims, PAPER_FAULTS) == cost, dims

    def test_infeasible_cut_rejected(self):
        with pytest.raises(ValueError):
            extra_comm_cost(5, (0,), PAPER_FAULTS)

    def test_no_faulty_pairs_costs_zero(self):
        # Two faults in subcubes that are NOT adjacent along any cut dim
        # pair with fault-free subcubes only: cost 0.
        # Q_3, faults 0 (v=00) and 3 (v=11) under D=(0,1): v's differ in
        # both bits -> never adjacent.
        assert extra_comm_cost(3, (0, 1), [0, 3]) == 0

    def test_single_pair_cost_is_w_distance(self):
        # Q_3, D=(0,): faults 0 (v=0, w=00) and 7 (v=1, w=11): HD(w)=2.
        assert extra_comm_cost(3, (0,), [0, 7]) == 2

    def test_max_over_pairs_per_dimension(self):
        # Q_4, D=(0,1): faults 0b0000 (v=00,w=00), 0b0001 (v=01,w=00),
        # 0b1110 (v=10,w=11): dim-0 pair (00,01): HD(00,00)=0; dim-1 pair
        # (00,10): HD(00,11)=2 -> total 2.
        assert extra_comm_cost(4, (0, 1), [0b0000, 0b0001, 0b1110]) == 2


class TestFaultOfSubcube:
    def test_paper_mapping(self):
        by_v = fault_of_subcube(5, (0, 1, 3), PAPER_FAULTS)
        assert by_v == {0b011: 3, 0b001: 5, 0b000: 16, 0b100: 24}

    def test_requires_single_fault_partition(self):
        with pytest.raises(ValueError):
            fault_of_subcube(5, (0, 1), PAPER_FAULTS)


class TestDanglingW:
    def test_paper_example2_most_frequent_w(self):
        # Fault w's under D=(0,1,3) are 00, 01, 10, 10: majority 10 (=2).
        assert choose_dangling_w(5, (0, 1, 3), PAPER_FAULTS) == 0b10

    def test_tie_breaks_smallest(self):
        # Q_3 D=(0,): faults 0 (w=00) and 5 (w=10): tie -> smallest w = 0.
        assert choose_dangling_w(3, (0,), [0, 5]) == 0

    def test_no_faults(self):
        assert choose_dangling_w(3, (0,), []) == 0


class TestSelectCutSequence:
    def test_paper_example2_selection(self):
        partition = find_min_cuts(5, PAPER_FAULTS)
        sel = select_cut_sequence(partition)
        assert sel.cut_dims == (0, 1, 3)  # first minimal-cost sequence
        assert sel.cost == 3
        assert sel.dangling_w == 0b10
        assert sel.dangling_processors == (18, 25, 26, 27)  # paper's numbers

    def test_dead_of_subcube_covers_all_subcubes(self):
        partition = find_min_cuts(5, PAPER_FAULTS)
        sel = select_cut_sequence(partition)
        assert len(sel.dead_of_subcube) == 8
        # faulty subcubes keep their fault as the dead processor
        split = sel.split
        for v, dead in enumerate(sel.dead_of_subcube):
            assert split.v_of(dead) == v
            if dead not in PAPER_FAULTS:
                assert split.w_of(dead) == sel.dangling_w

    def test_working_processors(self):
        partition = find_min_cuts(5, PAPER_FAULTS)
        sel = select_cut_sequence(partition)
        assert sel.working_processors == 32 - 8
        assert sel.m == 3 and sel.s == 2

    def test_selection_minimizes_cost(self, rng):
        for _ in range(30):
            n = int(rng.integers(3, 7))
            r = int(rng.integers(2, n))
            faults = random_faulty_processors(n, r, rng)
            partition = find_min_cuts(n, faults)
            sel = select_cut_sequence(partition)
            costs = [extra_comm_cost(n, d, faults) for d in partition.cutting_set]
            assert sel.cost == min(costs)
            # tie-break: the first minimizer in DFS order
            assert sel.cut_dims == partition.cutting_set[costs.index(min(costs))]

    def test_single_fault_trivial_selection(self):
        partition = find_min_cuts(4, [6])
        sel = select_cut_sequence(partition)
        assert sel.m == 0
        assert sel.dead_of_subcube == (6,)
