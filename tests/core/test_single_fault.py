"""Tests for repro.core.single_fault — Section 2.1's one-fault bitonic sort."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.single_fault import fault_free_bitonic_sort, single_fault_bitonic_sort
from repro.simulator.params import MachineParams

from tests.conftest import assert_sorted_output


class TestFaultFree:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_sorts(self, n, rng):
        keys = rng.integers(0, 1000, size=57).astype(float)
        res = fault_free_bitonic_sort(keys, n)
        assert_sorted_output(res, keys)

    def test_empty_input(self):
        res = fault_free_bitonic_sort([], 3)
        assert res.sorted_keys.size == 0

    def test_single_key(self):
        res = fault_free_bitonic_sort([42.0], 3)
        assert res.sorted_keys.tolist() == [42.0]

    def test_output_order_is_address_order(self, rng):
        res = fault_free_bitonic_sort(rng.random(32), 3)
        assert res.output_order == tuple(range(8))

    def test_block_size_is_ceil(self, rng):
        res = fault_free_bitonic_sort(rng.random(17), 3)
        assert res.block_size == 3  # ceil(17/8)

    def test_blocks_are_chunks_of_sorted(self, rng):
        keys = rng.random(16)
        res = fault_free_bitonic_sort(keys, 2)
        expected = np.sort(keys)
        for i, addr in enumerate(res.output_order):
            np.testing.assert_array_equal(
                res.machine.get_block(addr), expected[i * 4 : (i + 1) * 4]
            )

    def test_elapsed_positive_with_real_params(self, rng):
        res = fault_free_bitonic_sort(rng.random(64), 3, params=MachineParams.ncube7())
        assert res.elapsed > 0

    def test_q0_sorts_locally(self, rng):
        keys = rng.random(9)
        res = fault_free_bitonic_sort(keys, 0)
        assert_sorted_output(res, keys)

    def test_rejects_inf_keys(self):
        with pytest.raises(ValueError):
            fault_free_bitonic_sort([1.0, np.inf], 2)

    def test_exact_counts_mode(self, rng):
        keys = rng.random(32)
        res_model = fault_free_bitonic_sort(keys, 2, params=MachineParams.unit())
        res_exact = fault_free_bitonic_sort(
            keys, 2, params=MachineParams.unit(), exact_counts=True
        )
        assert_sorted_output(res_exact, keys)
        # both charge nonzero local-sort comparisons, with different models
        ph_model = res_model.machine.phases[0]
        ph_exact = res_exact.machine.phases[0]
        assert ph_model.comparisons > 0 and ph_exact.comparisons > 0


class TestSingleFault:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_sorts_any_fault_location(self, n, rng):
        keys = rng.integers(0, 100, size=23).astype(float)
        for faulty in range(1 << n):
            res = single_fault_bitonic_sort(keys, n, faulty)
            assert_sorted_output(res, keys)

    def test_fault_holds_no_keys(self, rng):
        res = single_fault_bitonic_sort(rng.random(14), 3, faulty=5)
        assert res.machine.get_block(5).size == 0
        assert 5 not in res.output_order

    def test_output_order_is_reindexed(self):
        res = single_fault_bitonic_sort([1.0, 2.0], 2, faulty=2)
        # logical l at physical l XOR 2; dead logical 0 skipped
        assert res.output_order == (3, 0, 1)

    def test_workers_is_n_minus_1(self, rng):
        res = single_fault_bitonic_sort(rng.random(21), 3, faulty=0)
        assert len(res.output_order) == 7
        assert res.block_size == 3  # ceil(21/7)

    def test_q0_with_fault_rejected(self):
        with pytest.raises(ValueError):
            single_fault_bitonic_sort([1.0], 0, faulty=0)

    def test_bad_fault_address_rejected(self):
        with pytest.raises(ValueError):
            single_fault_bitonic_sort([1.0], 2, faulty=4)

    def test_single_fault_slower_than_fault_free(self, rng):
        # Same machine size: the fault removes a worker, so blocks grow and
        # the sort takes at least as long.
        keys = rng.random(4096)
        p = MachineParams.ncube7()
        free = fault_free_bitonic_sort(keys, 4, params=p)
        faulty = single_fault_bitonic_sort(keys, 4, faulty=9, params=p)
        assert faulty.elapsed >= free.elapsed

    def test_faster_than_halved_cube(self, rng):
        # The paper's whole point: one fault costs far less than dropping
        # to the fault-free subcube Q_{n-1}.
        keys = rng.random(16384)
        p = MachineParams.ncube7()
        faulty = single_fault_bitonic_sort(keys, 5, faulty=3, params=p)
        halved = fault_free_bitonic_sort(keys, 4, params=p)
        assert faulty.elapsed < halved.elapsed

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_sort_property(self, data):
        n = data.draw(st.integers(1, 4))
        faulty = data.draw(st.integers(0, (1 << n) - 1))
        keys = data.draw(st.lists(st.integers(-50, 50), min_size=1, max_size=60))
        res = single_fault_bitonic_sort(keys, n, faulty)
        assert res.sorted_keys.tolist() == sorted(float(k) for k in keys)
