"""Tests for repro.core.spmd_sort — message-level execution + engine cross-validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams

from tests.conftest import assert_sorted_output


class TestSpmdSortCorrectness:
    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_fault_free(self, n, rng):
        keys = rng.integers(0, 500, size=37).astype(float)
        res = spmd_fault_tolerant_sort(keys, n, [])
        assert_sorted_output(res, keys)

    @pytest.mark.parametrize("faulty", [0, 3, 7])
    def test_single_fault(self, faulty, rng):
        keys = rng.integers(0, 500, size=29).astype(float)
        res = spmd_fault_tolerant_sort(keys, 3, [faulty])
        assert_sorted_output(res, keys)

    def test_paper_scenario(self, rng):
        keys = rng.integers(0, 1000, size=47).astype(float)
        res = spmd_fault_tolerant_sort(keys, 5, [3, 5, 16, 24])
        assert_sorted_output(res, keys)

    def test_total_faults(self, rng):
        keys = rng.integers(0, 500, size=50).astype(float)
        res = spmd_fault_tolerant_sort(keys, 4, [1, 6, 12], fault_kind=FaultKind.TOTAL)
        assert_sorted_output(res, keys)

    def test_random_sweep(self, rng):
        for _ in range(8):
            n = int(rng.integers(2, 5))
            r = int(rng.integers(0, n))
            faults = random_faulty_processors(n, r, rng)
            keys = rng.integers(0, 100, size=int(rng.integers(1, 60))).astype(float)
            res = spmd_fault_tolerant_sort(keys, n, list(faults))
            assert_sorted_output(res, keys)

    def test_blocks_hold_chunks(self, rng):
        keys = rng.random(28)
        res = spmd_fault_tolerant_sort(keys, 3, [2, 5])
        expected = np.sort(keys)
        flat = np.concatenate([res.blocks[r] for r in res.schedule.output_order])
        np.testing.assert_array_equal(flat[: keys.size], expected)

    def test_model_violation_rejected(self):
        with pytest.raises(ValueError):
            spmd_fault_tolerant_sort([1.0], 2, [1, 2])

    def test_empty_keys(self):
        res = spmd_fault_tolerant_sort([], 3, [1, 2])
        assert res.sorted_keys.size == 0


class TestEngineCrossValidation:
    """The same algorithm through both backends must agree."""

    def test_outputs_identical(self, rng):
        for _ in range(6):
            n = int(rng.integers(3, 5))
            r = int(rng.integers(0, n))
            faults = list(random_faulty_processors(n, r, rng))
            keys = rng.integers(0, 1000, size=int(rng.integers(5, 90))).astype(float)
            phase = fault_tolerant_sort(keys, n, faults)
            spmd = spmd_fault_tolerant_sort(keys, n, faults)
            np.testing.assert_array_equal(phase.sorted_keys, spmd.sorted_keys)

    def test_block_placement_identical(self, rng):
        keys = rng.random(60)
        faults = [3, 5, 16, 24]
        phase = fault_tolerant_sort(keys, 5, faults)
        spmd = spmd_fault_tolerant_sort(keys, 5, faults)
        assert phase.output_order == spmd.schedule.output_order
        for addr in phase.output_order:
            np.testing.assert_array_equal(
                phase.machine.get_block(addr), spmd.blocks[addr]
            )

    def test_times_correlate_across_scales(self, rng):
        # The event-driven time and the phase-accounted time won't match
        # exactly (contention, asynchrony), but both must grow with M and
        # stay within a modest constant factor of each other.
        p = MachineParams.ncube7()
        ratios = []
        for m_keys in (64, 256, 1024):
            keys = rng.random(m_keys)
            phase = fault_tolerant_sort(keys, 3, [1, 6], params=p)
            spmd = spmd_fault_tolerant_sort(keys, 3, [1, 6], params=p)
            ratios.append(spmd.finish_time / phase.elapsed)
        assert all(0.2 < r < 5.0 for r in ratios)

    def test_partial_vs_total_penalty_visible_in_both(self, rng):
        keys = rng.random(512)
        p = MachineParams.ncube7()
        faults = [0, 9, 20]
        ph_partial = fault_tolerant_sort(keys, 5, faults, params=p,
                                         fault_kind=FaultKind.PARTIAL).elapsed
        ph_total = fault_tolerant_sort(keys, 5, faults, params=p,
                                       fault_kind=FaultKind.TOTAL).elapsed
        sp_partial = spmd_fault_tolerant_sort(keys, 5, faults, params=p,
                                              fault_kind=FaultKind.PARTIAL).finish_time
        sp_total = spmd_fault_tolerant_sort(keys, 5, faults, params=p,
                                            fault_kind=FaultKind.TOTAL).finish_time
        assert ph_total >= ph_partial
        assert sp_total >= sp_partial
