"""Zero-one-principle style exhaustive tests.

An oblivious comparator network sorts every input iff it sorts every 0-1
input.  Our implementation is oblivious by construction (the schedule never
looks at keys; the probe short-circuit only skips provably no-op
exchanges), so exhaustively driving all 0-1 inputs through the small
configurations is a complete correctness proof for those shapes — much
stronger than random sampling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.core.single_fault import single_fault_bitonic_sort
from repro.core.spmd_sort import spmd_fault_tolerant_sort


def all_binary_inputs(m: int):
    for bits in range(1 << m):
        yield np.array([(bits >> i) & 1 for i in range(m)], dtype=float)


class TestZeroOneExhaustive:
    @pytest.mark.parametrize("faulty", [0, 1, 2, 3])
    def test_single_fault_q2_all_01_inputs(self, faulty):
        # 3 workers x 2 keys: all 2^6 inputs, every fault location.
        m = 6
        for keys in all_binary_inputs(m):
            res = single_fault_bitonic_sort(keys, 2, faulty)
            assert res.sorted_keys.tolist() == sorted(keys.tolist()), (
                faulty, keys.tolist()
            )

    @pytest.mark.parametrize("faults", [[0, 1], [0, 7], [2, 5], [3, 4], [1, 6]])
    def test_two_faults_q3_all_01_inputs(self, faults):
        # m = 1, s = 2: 6 workers x 2 keys = all 2^12 inputs is heavy, use
        # 1 key per worker (2^6 inputs) plus 2 keys (2^12) for one config.
        for keys in all_binary_inputs(6):
            res = fault_tolerant_sort(keys, 3, faults)
            assert res.sorted_keys.tolist() == sorted(keys.tolist()), (
                faults, keys.tolist()
            )

    def test_two_faults_q3_deeper_blocks(self):
        # One configuration at 2 keys/worker, all 2^12 binary inputs.
        for keys in all_binary_inputs(12):
            res = fault_tolerant_sort(keys, 3, [0, 7])
            assert res.sorted_keys.tolist() == sorted(keys.tolist()), keys.tolist()

    def test_three_faults_q4_sampled_01(self, rng):
        # Q_4 with 3 faults: 12 workers; exhaustive is 2^12 at 1 key each.
        for keys in all_binary_inputs(12):
            res = fault_tolerant_sort(keys, 4, [0, 6, 9])
            assert res.sorted_keys.tolist() == sorted(keys.tolist())

    def test_spmd_engine_01_inputs(self):
        # The message-level backend on all 2^6 binary inputs, Q_3 r=2.
        for keys in all_binary_inputs(6):
            res = spmd_fault_tolerant_sort(keys, 3, [1, 6])
            assert res.sorted_keys.tolist() == sorted(keys.tolist()), keys.tolist()


class TestAdversarialPatterns:
    """Classic worst-case arrangements beyond 0-1."""

    PATTERNS = {
        "reverse": lambda m: np.arange(m, 0, -1, dtype=float),
        "sawtooth": lambda m: np.array([i % 4 for i in range(m)], dtype=float),
        "organ-pipe": lambda m: np.array(
            [min(i, m - 1 - i) for i in range(m)], dtype=float
        ),
        "all-equal": lambda m: np.full(m, 7.0),
        "single-swap": lambda m: np.array(
            [1.0 if i == m - 1 else 0.0 if i == 0 else i for i in range(m)][::-1],
            dtype=float,
        ),
    }

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    @pytest.mark.parametrize("faults", [[5], [3, 5, 16, 24]])
    def test_patterns(self, name, faults):
        keys = self.PATTERNS[name](96)
        res = fault_tolerant_sort(keys, 5, faults)
        assert res.sorted_keys.tolist() == sorted(keys.tolist()), name

    def test_negative_and_fractional_keys(self, rng):
        keys = rng.standard_normal(100) * 1e6
        res = fault_tolerant_sort(keys, 4, [1, 14])
        np.testing.assert_array_equal(res.sorted_keys, np.sort(keys))

    def test_extreme_magnitudes(self):
        keys = np.array([1e308, -1e308, 0.0, 1e-308, -1e-308, 42.0] * 5)
        res = fault_tolerant_sort(keys, 4, [2, 9])
        np.testing.assert_array_equal(res.sorted_keys, np.sort(keys))
