"""Tests for repro.cube.address — bit-level address algebra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cube.address import (
    bit_of,
    clear_bit,
    flip_bit,
    from_bits,
    gray_code,
    gray_rank,
    hamming_distance,
    hamming_weight,
    popcount_array,
    set_bit,
    to_bits,
    validate_address,
    validate_dimension,
)


class TestValidation:
    def test_dimension_accepts_range(self):
        for n in (0, 1, 6, 24):
            assert validate_dimension(n) == n

    def test_dimension_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_dimension(-1)

    def test_dimension_rejects_huge(self):
        with pytest.raises(ValueError):
            validate_dimension(25)

    def test_dimension_rejects_non_int(self):
        with pytest.raises(TypeError):
            validate_dimension(3.0)

    def test_dimension_accepts_numpy_int(self):
        assert validate_dimension(np.int64(5)) == 5

    def test_address_in_range(self):
        assert validate_address(0, 3) == 0
        assert validate_address(7, 3) == 7

    def test_address_out_of_range(self):
        with pytest.raises(ValueError):
            validate_address(8, 3)
        with pytest.raises(ValueError):
            validate_address(-1, 3)

    def test_address_rejects_float(self):
        with pytest.raises(TypeError):
            validate_address(1.5, 3)


class TestBitOps:
    def test_bit_of(self):
        assert bit_of(0b1010, 1) == 1
        assert bit_of(0b1010, 0) == 0
        assert bit_of(0b1010, 3) == 1

    def test_set_clear_flip_roundtrip(self):
        a = 0b0110
        assert set_bit(a, 0) == 0b0111
        assert clear_bit(a, 1) == 0b0100
        assert flip_bit(flip_bit(a, 2), 2) == a

    def test_flip_changes_exactly_one_bit(self):
        for d in range(5):
            assert hamming_distance(13, flip_bit(13, d)) == 1


class TestHamming:
    def test_weight_examples(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0b1011) == 3
        assert hamming_weight((1 << 20) - 1) == 20

    def test_weight_rejects_negative(self):
        with pytest.raises(ValueError):
            hamming_weight(-3)

    def test_distance_symmetric(self):
        assert hamming_distance(0b0011, 0b0101) == 2
        assert hamming_distance(0b0101, 0b0011) == 2

    def test_distance_identity(self):
        assert hamming_distance(42, 42) == 0

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_distance_triangle_inequality(self, a, b, c):
        assert hamming_distance(a, c) <= hamming_distance(a, b) + hamming_distance(b, c)

    @given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
    def test_distance_is_weight_of_xor(self, a, b):
        assert hamming_distance(a, b) == hamming_weight(a ^ b)


class TestPopcountArray:
    def test_matches_scalar(self, rng):
        vals = rng.integers(0, 2**20, size=256)
        out = popcount_array(vals)
        assert out.tolist() == [hamming_weight(int(v)) for v in vals]

    def test_rejects_float_array(self):
        with pytest.raises(TypeError):
            popcount_array(np.array([1.0, 2.0]))

    def test_empty(self):
        assert popcount_array(np.array([], dtype=np.int64)).size == 0


class TestBitsConversion:
    def test_to_bits_msb_first(self):
        # Paper notation u_{n-1} ... u_0: index 0 is the MSB.
        assert to_bits(0b01101, 5) == (0, 1, 1, 0, 1)

    def test_from_bits_inverse(self):
        for a in range(32):
            assert from_bits(to_bits(a, 5)) == a

    def test_from_bits_rejects_non_binary(self):
        with pytest.raises(ValueError):
            from_bits((0, 2, 1))

    @given(st.integers(0, 2**10 - 1))
    def test_roundtrip_property(self, a):
        assert from_bits(to_bits(a, 10)) == a


class TestGray:
    def test_first_codes(self):
        assert [gray_code(i) for i in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]

    def test_adjacent_codes_differ_in_one_bit(self):
        for i in range(255):
            assert hamming_distance(gray_code(i), gray_code(i + 1)) == 1

    def test_gray_is_bijection_on_range(self):
        codes = {gray_code(i) for i in range(256)}
        assert codes == set(range(256))

    @given(st.integers(0, 2**20))
    def test_rank_inverts_code(self, i):
        assert gray_rank(gray_code(i)) == i

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            gray_code(-1)
        with pytest.raises(ValueError):
            gray_rank(-1)
