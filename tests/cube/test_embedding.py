"""Tests for repro.cube.embedding — Gray-code rings and meshes."""

from __future__ import annotations

import pytest

from repro.cube.address import hamming_distance
from repro.cube.embedding import mesh_embedding, mesh_node, ring_embedding, ring_position


class TestRing:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_dilation_one(self, n):
        ring = ring_embedding(n)
        size = 1 << n
        for i in range(size):
            assert hamming_distance(ring[i], ring[(i + 1) % size]) == 1

    def test_visits_every_node_once(self):
        ring = ring_embedding(4)
        assert sorted(ring) == list(range(16))

    def test_position_inverts(self):
        for addr in range(32):
            ring = ring_embedding(5)
            assert ring[ring_position(addr, 5)] == addr

    def test_position_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            ring_position(8, 3)


class TestMesh:
    def test_shape(self):
        mesh = mesh_embedding(2, 3)
        assert len(mesh) == 4 and len(mesh[0]) == 8

    def test_dilation_one_both_axes(self):
        mesh = mesh_embedding(2, 2)
        for r in range(4):
            for c in range(4):
                if c + 1 < 4:
                    assert hamming_distance(mesh[r][c], mesh[r][c + 1]) == 1
                if r + 1 < 4:
                    assert hamming_distance(mesh[r][c], mesh[r + 1][c]) == 1

    def test_covers_cube(self):
        mesh = mesh_embedding(2, 3)
        flat = sorted(x for row in mesh for x in row)
        assert flat == list(range(32))

    def test_mesh_node_matches_matrix(self):
        mesh = mesh_embedding(3, 2)
        for r in range(8):
            for c in range(4):
                assert mesh_node(r, c, 3, 2) == mesh[r][c]

    def test_mesh_node_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            mesh_node(4, 0, 2, 2)
        with pytest.raises(ValueError):
            mesh_node(0, 4, 2, 2)
