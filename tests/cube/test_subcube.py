"""Tests for repro.cube.subcube — subcube geometry and the v/w split."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cube.subcube import AddressSplit, Subcube, enumerate_subcubes, partition_by_dims


class TestSubcube:
    def test_dim_and_size(self):
        sub = Subcube(4, fixed_mask=0b1010, fixed_value=0b1000)
        assert sub.dim == 2
        assert sub.size == 4

    def test_free_and_fixed_dims(self):
        sub = Subcube(4, fixed_mask=0b1010, fixed_value=0b0010)
        assert sub.free_dims == (0, 2)
        assert sub.fixed_dims == (1, 3)

    def test_value_outside_mask_rejected(self):
        with pytest.raises(ValueError):
            Subcube(3, fixed_mask=0b001, fixed_value=0b010)

    def test_contains(self):
        sub = Subcube(3, fixed_mask=0b100, fixed_value=0b100)
        assert sub.contains(0b100)
        assert sub.contains(0b111)
        assert not sub.contains(0b011)

    def test_members_count_and_containment(self):
        sub = Subcube(4, fixed_mask=0b0101, fixed_value=0b0001)
        members = list(sub.members())
        assert len(members) == sub.size
        assert all(sub.contains(m) for m in members)
        assert len(set(members)) == len(members)

    def test_local_global_roundtrip(self):
        sub = Subcube(5, fixed_mask=0b10100, fixed_value=0b00100)
        for w in range(sub.size):
            assert sub.global_to_local(sub.local_to_global(w)) == w

    def test_local_order_follows_ascending_free_dims(self):
        sub = Subcube(3, fixed_mask=0b010, fixed_value=0b010)
        # free dims 0 and 2; local bit 0 toggles dim 0, bit 1 toggles dim 2
        assert sub.local_to_global(0b01) == 0b011
        assert sub.local_to_global(0b10) == 0b110

    def test_global_to_local_rejects_nonmember(self):
        sub = Subcube(3, fixed_mask=0b100, fixed_value=0b100)
        with pytest.raises(ValueError):
            sub.global_to_local(0b000)

    def test_whole_cube_subcube(self):
        sub = Subcube(3, 0, 0)
        assert sub.dim == 3
        assert list(sub.members()) == list(range(8))


class TestPartitionByDims:
    def test_partition_covers_cube_disjointly(self):
        subs = partition_by_dims(4, (1, 3))
        seen = set()
        for sub in subs:
            members = set(sub.members())
            assert not members & seen
            seen |= members
        assert seen == set(range(16))

    def test_partition_count(self):
        assert len(partition_by_dims(5, (0, 2, 4))) == 8

    def test_duplicate_dims_rejected(self):
        with pytest.raises(ValueError):
            partition_by_dims(4, (1, 1))

    def test_out_of_range_dim_rejected(self):
        with pytest.raises(ValueError):
            partition_by_dims(3, (3,))


class TestAddressSplit:
    def test_paper_figure5_mapping(self):
        # Paper: Q_5 with D = (0, 1, 3): v = u3 u1 u0, w = u4 u2.
        split = AddressSplit(5, (0, 1, 3))
        assert split.m == 3 and split.s == 2
        assert split.rest_dims == (2, 4)
        # FP1 = 00011 -> v = 011, w = 00
        assert split.v_of(0b00011) == 0b011
        assert split.w_of(0b00011) == 0b00
        # FP3 = 10000 -> v = 000, w = 10
        assert split.v_of(0b10000) == 0b000
        assert split.w_of(0b10000) == 0b10

    def test_paper_dangling_address_18(self):
        # Example 2: subcube v=010 with w=10 is processor 18 (10010).
        split = AddressSplit(5, (0, 1, 3))
        assert split.combine(0b010, 0b10) == 18

    def test_combine_inverts_split(self):
        split = AddressSplit(6, (1, 4))
        for addr in range(64):
            assert split.combine(split.v_of(addr), split.w_of(addr)) == addr

    def test_subcube_of_v_contains_exactly_that_v(self):
        split = AddressSplit(5, (0, 2))
        for v in range(4):
            sub = split.subcube(v)
            for member in sub.members():
                assert split.v_of(member) == v

    def test_subcubes_partition(self):
        split = AddressSplit(5, (1, 3, 4))
        all_members = [m for sub in split.subcubes() for m in sub.members()]
        assert sorted(all_members) == list(range(32))

    def test_v_bit_order_d1_is_lsb(self):
        # v_{k-1} = u_{d_k}: the first cutting dimension supplies v's LSB.
        split = AddressSplit(4, (2, 0))
        addr = 0b0100  # bit2 = 1, bit0 = 0
        assert split.v_of(addr) == 0b01

    def test_out_of_range_inputs(self):
        split = AddressSplit(4, (0,))
        with pytest.raises(ValueError):
            split.combine(2, 0)
        with pytest.raises(ValueError):
            split.combine(0, 8)

    @given(st.data())
    def test_split_bijection_property(self, data):
        n = data.draw(st.integers(2, 7))
        dims = data.draw(
            st.lists(st.integers(0, n - 1), unique=True, min_size=1, max_size=n)
        )
        split = AddressSplit(n, dims)
        addr = data.draw(st.integers(0, (1 << n) - 1))
        v, w = split.v_of(addr), split.w_of(addr)
        assert 0 <= v < (1 << split.m)
        assert 0 <= w < (1 << split.s)
        assert split.combine(v, w) == addr


class TestEnumerateSubcubes:
    def test_counts(self):
        # C(n, k) * 2^(n-k) subcubes of dimension k.
        from math import comb

        for n, k in [(3, 1), (4, 2), (5, 0), (4, 4)]:
            got = sum(1 for _ in enumerate_subcubes(n, k))
            assert got == comb(n, k) * (1 << (n - k))

    def test_each_has_right_dim(self):
        assert all(sub.dim == 2 for sub in enumerate_subcubes(4, 2))

    def test_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            list(enumerate_subcubes(3, 4))
