"""Tests for repro.cube.topology — neighbors, links, routing paths."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.cube.address import hamming_distance
from repro.cube.topology import Hypercube, ecube_path, shortest_paths_avoiding


class TestHypercube:
    def test_size(self):
        assert Hypercube(0).size == 1
        assert Hypercube(6).size == 64

    def test_neighbors_count_and_distance(self):
        cube = Hypercube(4)
        for node in cube.nodes():
            nbs = cube.neighbors(node)
            assert len(nbs) == 4
            assert all(cube.distance(node, nb) == 1 for nb in nbs)
            assert len(set(nbs)) == 4

    def test_neighbor_along_dimension(self):
        cube = Hypercube(3)
        assert cube.neighbor(0b010, 0) == 0b011
        assert cube.neighbor(0b010, 2) == 0b110

    def test_neighbor_rejects_bad_dim(self):
        with pytest.raises(ValueError):
            Hypercube(3).neighbor(0, 3)

    def test_distance_is_hamming(self):
        cube = Hypercube(5)
        assert cube.distance(0b00000, 0b10101) == 3

    def test_links_count(self):
        for n in range(1, 6):
            cube = Hypercube(n)
            links = list(cube.links())
            assert len(links) == cube.num_links() == n * 2 ** (n - 1)
            assert len(set(links)) == len(links)

    def test_links_have_bit_clear(self):
        for node, d in Hypercube(4).links():
            assert not (node >> d) & 1

    def test_link_id_canonical(self):
        cube = Hypercube(3)
        assert cube.link_id(5, 7) == cube.link_id(7, 5) == (5, 1)

    def test_link_id_rejects_non_neighbors(self):
        cube = Hypercube(3)
        with pytest.raises(ValueError):
            cube.link_id(0, 3)
        with pytest.raises(ValueError):
            cube.link_id(2, 2)

    def test_q0_has_no_links(self):
        assert Hypercube(0).num_links() == 0


class TestEcubePath:
    def test_endpoints_and_length(self):
        path = ecube_path(0b000, 0b101, 3)
        assert path[0] == 0b000 and path[-1] == 0b101
        assert len(path) == hamming_distance(0b000, 0b101) + 1

    def test_corrects_lowest_dimension_first(self):
        assert ecube_path(0b00, 0b11, 2) == [0b00, 0b01, 0b11]

    def test_self_path(self):
        assert ecube_path(5, 5, 3) == [5]

    def test_consecutive_hops_are_neighbors(self):
        path = ecube_path(0b10010, 0b01101, 5)
        for a, b in zip(path, path[1:]):
            assert hamming_distance(a, b) == 1

    @given(st.integers(0, 63), st.integers(0, 63))
    def test_path_length_property(self, src, dst):
        path = ecube_path(src, dst, 6)
        assert len(path) == hamming_distance(src, dst) + 1
        assert len(set(path)) == len(path)


class TestShortestPathsAvoiding:
    def test_no_faults_gives_hamming(self):
        dist = shortest_paths_avoiding(4, 0)
        assert all(dist[v] == hamming_distance(0, v) for v in range(16))

    def test_forbidden_nodes_absent(self):
        dist = shortest_paths_avoiding(3, 0, forbidden=[3, 5])
        assert 3 not in dist and 5 not in dist

    def test_detour_lengthens_path(self):
        # In Q_2, route 0 -> 3 avoiding node 1 must go through 2: length 2.
        dist = shortest_paths_avoiding(2, 0, forbidden=[1])
        assert dist[3] == 2
        # Avoiding both intermediate nodes disconnects 3.
        dist2 = shortest_paths_avoiding(2, 0, forbidden=[1, 2])
        assert 3 not in dist2

    def test_connectivity_with_n_minus_1_faults(self, rng):
        # Q_n is n-connected: r <= n-1 total faults never disconnect it.
        n = 5
        for _ in range(50):
            faults = rng.choice(1 << n, size=n - 1, replace=False).tolist()
            normal = [v for v in range(1 << n) if v not in faults]
            dist = shortest_paths_avoiding(n, normal[0], forbidden=faults)
            assert all(v in dist for v in normal)

    def test_source_forbidden_rejected(self):
        with pytest.raises(ValueError):
            shortest_paths_avoiding(3, 2, forbidden=[2])
