"""Tests for repro.experiments.cubeviz — partition diagrams."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.core.ftsort import plan_partition
from repro.cube.address import hamming_distance
from repro.experiments.cubeviz import cube_layout, partition_diagram

SVG_NS = "{http://www.w3.org/2000/svg}"


class TestCubeLayout:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 6])
    def test_all_nodes_distinct_positions(self, n):
        coords = cube_layout(n)
        assert len(coords) == 1 << n
        assert len(set(coords.values())) == 1 << n

    def test_edges_axis_aligned(self):
        # A bit flip changes one half of the address, so every hypercube
        # edge is horizontal or vertical in the layout.
        coords = cube_layout(4)
        for a in range(16):
            for d in range(4):
                b = a ^ (1 << d)
                assert hamming_distance(a, b) == 1
                xa, ya = coords[a]
                xb, yb = coords[b]
                assert xa == xb or ya == yb

    def test_lowest_dim_edges_are_unit_steps(self):
        # Dimension-0 flips move between consecutive Gray ranks when the
        # rank is even — spot-check that short edges exist.
        coords = cube_layout(4)
        short = 0
        for a in range(16):
            b = a ^ 1
            xa, ya = coords[a]
            xb, yb = coords[b]
            if abs(xa - xb) + abs(ya - yb) == 86.0:
                short += 1
        assert short >= 8

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            cube_layout(9)


class TestPartitionDiagram:
    def test_valid_svg(self):
        svg = partition_diagram(5, [3, 5, 16, 24], title="Example 1")
        root = ET.fromstring(svg)
        assert root.tag == f"{SVG_NS}svg"
        assert "Example 1" in svg

    def test_node_count(self):
        svg = partition_diagram(4, [0, 6, 9])
        root = ET.fromstring(svg)
        circles = root.findall(f"{SVG_NS}circle")
        assert len(circles) == 16

    def test_fault_markers(self):
        svg = partition_diagram(4, [0, 6, 9])
        root = ET.fromstring(svg)
        # each fault draws two cross strokes in black
        cross = [
            el for el in root.findall(f"{SVG_NS}line")
            if el.get("stroke") == "#000000"
        ]
        assert len(cross) == 2 * 3

    def test_dangling_hollow(self):
        _, sel = plan_partition(5, [3, 5, 16, 24])
        svg = partition_diagram(5, sel)
        root = ET.fromstring(svg)
        hollow = [
            el for el in root.findall(f"{SVG_NS}circle") if el.get("fill") == "white"
        ]
        assert len(hollow) == len(sel.dangling_processors)

    def test_accepts_selection_or_faults(self):
        _, sel = plan_partition(5, [3, 5, 16, 24])
        a = partition_diagram(5, sel)
        b = partition_diagram(5, [3, 5, 16, 24])
        assert a == b

    def test_single_fault_no_partition(self):
        svg = partition_diagram(3, [5])
        ET.fromstring(svg)
        # uncolored nodes
        assert "#bbbbbb" in svg

    def test_intra_subcube_edges_emphasized(self):
        svg = partition_diagram(5, [3, 5, 16, 24])
        root = ET.fromstring(svg)
        dark = [el for el in root.findall(f"{SVG_NS}line") if el.get("stroke") == "#555555"]
        light = [el for el in root.findall(f"{SVG_NS}line") if el.get("stroke") == "#dddddd"]
        # D_beta = (0,1,3): 2 dims free per subcube -> within-subcube edges
        # exist, and cut edges exist too.
        assert dark and light
        # Q_5 has 80 edges total; with s = 2 each of 8 subcubes has 4
        # internal edges -> 32 dark, 48 light.
        assert len(dark) == 32
        assert len(light) == 48
