"""Tests for repro.experiments.exact — exhaustive table validation."""

from __future__ import annotations

from math import comb

import pytest

from repro.experiments.exact import (
    exact_mincut_distribution,
    exact_utilization_extremes,
    placements,
)
from repro.experiments.table1 import compute_table1
from repro.experiments.table2 import compute_table2


class TestPlacements:
    def test_count(self):
        assert sum(1 for _ in placements(4, 3)) == comb(16, 3)

    def test_bad_r(self):
        with pytest.raises(ValueError):
            list(placements(3, 9))


class TestExactMincut:
    def test_structural_cells(self):
        assert exact_mincut_distribution(4, 0) == {0: 100.0}
        assert exact_mincut_distribution(4, 1) == {0: 100.0}
        assert exact_mincut_distribution(4, 2) == {1: 100.0}

    def test_q4_r3_all_mincut_two(self):
        # Every 3-fault placement on Q_4 partitions with exactly 2 cuts:
        # 1 cut can't separate 3 faults, and 2 always can (r-1 bound).
        assert exact_mincut_distribution(4, 3) == {2: 100.0}

    def test_q5_r4_exact_split(self):
        dist = exact_mincut_distribution(5, 4)
        assert set(dist) == {2, 3}
        assert dist[2] + dist[3] == pytest.approx(100.0)
        # Monte-Carlo Table 1 measured ~58.4/41.6; exact must be close.
        assert 55.0 < dist[2] < 62.0

    def test_monte_carlo_agrees_with_exact(self):
        exact = exact_mincut_distribution(5, 4)
        sampled = compute_table1(ns=(5,), trials=4000, seed=123)
        cell = next(c for c in sampled if c.r == 4)
        for m, pct in exact.items():
            # binomial std at 4000 trials is ~0.8%; allow 4 sigma
            assert abs(cell.percent(m) - pct) < 3.5, (m, pct, cell.percent(m))


class TestExactUtilization:
    def test_q4_r3(self):
        pb, pw, bb, bw = exact_utilization_extremes(4, 3)
        # mincut always 2 -> working = 16 - 4 = 12 of 13 normal
        assert pb == pw == pytest.approx(100 * 12 / 13)
        # baseline: best Q_3 (8/13), worst Q_2 (4/13)
        assert bb == pytest.approx(100 * 8 / 13)
        assert bw == pytest.approx(100 * 4 / 13)

    def test_monte_carlo_extremes_bounded_by_exact(self):
        pb, pw, bb, bw = exact_utilization_extremes(4, 3)
        sampled = compute_table2(ns=(4,), trials=500, seed=5)
        cell = next(c for c in sampled if c.r == 3)
        # sampling can only shrink the observed range
        assert cell.proposed_best <= pb + 1e-9
        assert cell.proposed_worst >= pw - 1e-9
        assert cell.baseline_best <= bb + 1e-9
        assert cell.baseline_worst >= bw - 1e-9

    def test_proposed_dominates_exactly(self):
        for r in (1, 2, 3):
            pb, pw, bb, bw = exact_utilization_extremes(4, r)
            assert pw >= bb - 1e-9
