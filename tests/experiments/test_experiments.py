"""Tests for repro.experiments — table/figure regenerators (reduced trials)."""

from __future__ import annotations

import pytest

from repro.experiments.figure7 import compute_figure7, default_m_values, render_figure7
from repro.experiments.report import format_series, format_table
from repro.experiments.table1 import compute_table1, render_table1
from repro.experiments.table2 import compute_table2, render_table2
from repro.simulator.params import MachineParams


class TestReport:
    def test_table_alignment(self):
        out = format_table(["a", "bb"], [[1, 2.5], [30, 4.0]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert "2.50" in out

    def test_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_series(self):
        out = format_series("x", [1, 2], {"y": [3.0, 4.0]})
        assert "3.00" in out and "4.00" in out

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            format_series("x", [1], {"y": [1.0, 2.0]})


class TestTable1:
    @pytest.fixture(scope="class")
    def cells(self):
        return compute_table1(ns=(3, 4, 5), trials=150, seed=1)

    def test_cells_cover_grid(self, cells):
        pairs = {(c.n, c.r) for c in cells}
        assert pairs == {(n, r) for n in (3, 4, 5) for r in range(n)}

    def test_percentages_sum_to_100(self, cells):
        for c in cells:
            assert sum(c.percent_by_mincut.values()) == pytest.approx(100.0)

    def test_r_le_1_always_mincut_zero(self, cells):
        for c in cells:
            if c.r <= 1:
                assert c.percent(0) == 100.0

    def test_r2_always_mincut_one(self, cells):
        for c in cells:
            if c.r == 2:
                assert c.percent(1) == 100.0

    def test_paper_shape_n5_r4(self):
        # Paper Table 1 shape: for n = 5, r = 4 the mass splits between
        # m = 2 and m = 3 with m = 2 dominating.
        cells = compute_table1(ns=(5,), trials=400, seed=2)
        cell = next(c for c in cells if c.r == 4)
        assert cell.percent(2) > cell.percent(3) > 0
        assert cell.percent(2) + cell.percent(3) == pytest.approx(100.0)

    def test_render(self, cells):
        out = render_table1(cells)
        assert "Table 1" in out
        assert "m=0 (%)" in out

    def test_deterministic(self):
        a = compute_table1(ns=(3,), trials=100, seed=9)
        b = compute_table1(ns=(3,), trials=100, seed=9)
        assert [c.percent_by_mincut for c in a] == [c.percent_by_mincut for c in b]


class TestTable2:
    @pytest.fixture(scope="class")
    def cells(self):
        return compute_table2(ns=(4, 5), trials=120, seed=3)

    def test_proposed_dominates_baseline(self, cells):
        for c in cells:
            assert c.proposed_worst >= c.baseline_best - 1e-9 or c.r == 0
            assert c.proposed_best >= c.baseline_best

    def test_r0_everything_100(self, cells):
        for c in cells:
            if c.r == 0:
                assert c.proposed_best == c.baseline_best == 100.0

    def test_bounds_ordering(self, cells):
        for c in cells:
            assert c.proposed_best >= c.proposed_worst
            assert c.baseline_best >= c.baseline_worst

    def test_proposed_worst_at_least_75_percent_of_machine(self, cells):
        # Paper: >= 3N/4 processors work in the worst case.
        for c in cells:
            working_fraction = c.proposed_worst / 100 * ((1 << c.n) - c.r) / (1 << c.n)
            assert working_fraction >= 0.75 - 1e-9

    def test_render(self, cells):
        out = render_table2(cells)
        assert "Table 2" in out and "max-subcube" in out


class TestFigure7:
    @pytest.fixture(scope="class")
    def panel(self):
        return compute_figure7(
            4,
            m_values=(800, 16 * 2000),
            placements=2,
            params=MachineParams.ncube7(),
            seed=4,
        )

    def test_series_present(self, panel):
        assert "ft r=1" in panel.series and "ft r=3" in panel.series
        assert "fault-free Q_4" in panel.series

    def test_times_grow_with_m(self, panel):
        for series in panel.series.values():
            assert series[-1] > series[0]

    def test_paper_claims_at_large_m(self, panel):
        # Q_4 panel: r=1,2 beat fault-free Q_3; r=3 beats fault-free Q_2.
        last = {k: v[-1] for k, v in panel.series.items()}
        assert last["ft r=1"] < last["fault-free Q_3"]
        assert last["ft r=2"] < last["fault-free Q_3"]
        assert last["ft r=3"] < last["fault-free Q_2"]

    def test_default_m_values_scale(self):
        vals = default_m_values(6, points=3)
        assert len(vals) == 3
        assert vals[0] == 50 * 64 and vals[-1] == 5000 * 64

    def test_render(self, panel):
        out = render_figure7(panel)
        assert "Figure 7" in out and "Q_4" in out
