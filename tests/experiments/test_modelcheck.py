"""Tests for repro.experiments.modelcheck."""

from __future__ import annotations

import pytest

from repro.experiments.modelcheck import (
    compute_modelcheck,
    render_modelcheck,
)


@pytest.fixture(scope="module")
def cells():
    return compute_modelcheck(ns=(4, 5), keys_per_proc=200, placements=3, seed=9)


class TestModelCheck:
    def test_grid_covered(self, cells):
        assert {(c.n, c.r) for c in cells} == {
            (n, r) for n in (4, 5) for r in range(n)
        }

    def test_bound_sound_everywhere(self, cells):
        for c in cells:
            assert c.max_ratio <= 1.0, (c.n, c.r, c.max_ratio)

    def test_bound_not_vacuous(self, cells):
        for c in cells:
            assert c.mean_ratio > 0.2, (c.n, c.r, c.mean_ratio)

    def test_mean_le_max(self, cells):
        for c in cells:
            assert c.mean_ratio <= c.max_ratio + 1e-12

    def test_multi_fault_slack_larger(self, cells):
        # The worst-case formula is loosest for the partitioned path
        # (full-sort charges vs our merge+mirror): multi-fault ratios sit
        # well below the near-tight fault-free ones.
        free = next(c for c in cells if (c.n, c.r) == (5, 0))
        multi = next(c for c in cells if (c.n, c.r) == (5, 4))
        assert multi.mean_ratio < free.mean_ratio

    def test_render(self, cells):
        out = render_modelcheck(cells)
        assert "Model check" in out and "measured/bound" in out
