"""Tests for repro.experiments.report — table/series/CSV rendering."""

from __future__ import annotations

import csv
import io

import pytest

from repro.experiments.report import format_series, format_table, to_csv


class TestFormatTable:
    def test_columns_aligned(self):
        out = format_table(["name", "v"], [["a", 1], ["longer", 22]])
        lines = out.splitlines()
        # separator row matches header width
        assert len(lines[1]) == len(lines[0])
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_floats_two_decimals(self):
        out = format_table(["x"], [[3.14159]])
        assert "3.14" in out and "3.142" not in out

    def test_ints_verbatim(self):
        out = format_table(["x"], [[320000]])
        assert "320000" in out

    def test_empty_rows_ok(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and "b" in out

    def test_title_on_first_line(self):
        out = format_table(["a"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"


class TestToCsv:
    def test_roundtrip(self):
        text = to_csv(["n", "r", "pct"], [[6, 5, 93.82], [6, 4, 64.79]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[0] == ["n", "r", "pct"]
        assert rows[1] == ["6", "5", "93.82"]

    def test_quoting_of_commas(self):
        text = to_csv(["label"], [["a, b"]])
        rows = list(csv.reader(io.StringIO(text)))
        assert rows[1] == ["a, b"]

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            to_csv(["a", "b"], [[1]])

    def test_empty_table(self):
        text = to_csv(["a"], [])
        assert text == "a\n"


class TestFormatSeries:
    def test_headers_are_series_names(self):
        out = format_series("M", [1, 2], {"s1": [1.0, 2.0], "s2": [3.0, 4.0]})
        header = out.splitlines()[0]
        assert "M" in header and "s1" in header and "s2" in header

    def test_title_passthrough(self):
        out = format_series("x", [1], {"y": [2.0]}, title="Series Title")
        assert out.splitlines()[0] == "Series Title"
