"""Tests for repro.experiments.runner — the reproduce-all command."""

from __future__ import annotations

import os

import pytest

from repro.experiments.runner import main, run_all


class TestRunAll:
    @pytest.fixture(scope="class")
    def out_dir(self, tmp_path_factory):
        d = tmp_path_factory.mktemp("results")
        run_all(str(d), quick=True, seed=7)
        return d

    def test_all_artifacts_written(self, out_dir):
        names = set(os.listdir(out_dir))
        expected = {
            "MANIFEST.txt", "table1.txt", "table2.txt", "modelcheck.txt",
            "data_sensitivity.txt", "table1.csv", "table2.csv",
            "figure7a.txt", "figure7b.txt", "figure7c.txt", "figure7d.txt",
            "figure7a.csv", "figure7b.csv", "figure7c.csv", "figure7d.csv",
            "figure7a.svg", "figure7b.svg", "figure7c.svg", "figure7d.svg",
            "figure3_partition_q4.svg", "figure5_partition_q5.svg",
        }
        assert expected <= names

    def test_csv_parses(self, out_dir):
        import csv as csvmod

        with open(out_dir / "table2.csv", newline="") as fh:
            rows = list(csvmod.reader(fh))
        assert rows[0][:2] == ["n", "r"]
        assert len(rows) > 5

    def test_tables_contain_rows(self, out_dir):
        table1 = (out_dir / "table1.txt").read_text()
        assert "Table 1" in table1 and "m=3" in table1
        table2 = (out_dir / "table2.txt").read_text()
        assert "max-subcube" in table2

    def test_svg_valid(self, out_dir):
        import xml.etree.ElementTree as ET

        ET.fromstring((out_dir / "figure7a.svg").read_text())

    def test_manifest_lists_artifacts(self, out_dir):
        manifest = (out_dir / "MANIFEST.txt").read_text()
        assert "table1.txt" in manifest
        assert "figure7d.svg" in manifest
        assert "seed: 7" in manifest

    def test_cli_main(self, tmp_path, capsys):
        rc = main(["--out", str(tmp_path / "r"), "--quick", "--seed", "3"])
        assert rc == 0
        assert "artifacts" in capsys.readouterr().out
