"""Tests for repro.experiments.svgplot — dependency-free SVG charts."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.figure7 import compute_figure7, render_figure7_svg
from repro.experiments.svgplot import PALETTE, line_chart, save_chart
from repro.simulator.params import MachineParams

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


class TestLineChart:
    def test_valid_xml(self):
        svg = line_chart([1, 10, 100], {"a": [1.0, 10.0, 100.0]})
        root = parse(svg)
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        svg = line_chart([1, 10], {"a": [1.0, 2.0], "b": [3.0, 4.0]})
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        # one data polyline per series (legend swatches are <line>)
        assert len(polylines) == 2

    def test_legend_labels_present(self):
        svg = line_chart([1, 10], {"ft r=1": [1.0, 2.0]}, title="T")
        assert "ft r=1" in svg and ">T<" in svg

    def test_baseline_series_dashed(self):
        svg = line_chart(
            [1, 10], {"fault-free Q_5": [1.0, 2.0], "ft r=1": [1.0, 2.0]}
        )
        root = parse(svg)
        dashed = [
            el for el in root.iter(f"{SVG_NS}polyline")
            if el.get("stroke-dasharray")
        ]
        assert len(dashed) == 1

    def test_markers_per_point(self):
        svg = line_chart([1, 10, 100], {"a": [1.0, 2.0, 3.0]})
        root = parse(svg)
        assert len(root.findall(f"{SVG_NS}circle")) == 3

    def test_title_escaped(self):
        svg = line_chart([1, 10], {"a": [1.0, 2.0]}, title="a < b & c")
        parse(svg)  # must stay valid XML

    def test_rejects_empty_series(self):
        with pytest.raises(ValueError):
            line_chart([1, 10], {})

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            line_chart([1, 10], {"a": [1.0]})

    def test_rejects_single_point(self):
        with pytest.raises(ValueError):
            line_chart([1], {"a": [1.0]})

    def test_rejects_nonpositive_on_log(self):
        with pytest.raises(ValueError):
            line_chart([0, 10], {"a": [1.0, 2.0]})

    def test_linear_axes_allow_zero(self):
        svg = line_chart([0, 10], {"a": [0.0, 2.0]}, log_x=False, log_y=False)
        parse(svg)

    def test_palette_cycles(self):
        series = {f"s{i}": [1.0, 2.0] for i in range(len(PALETTE) + 2)}
        svg = line_chart([1, 10], series)
        parse(svg)

    def test_save_chart(self, tmp_path):
        svg = line_chart([1, 10], {"a": [1.0, 2.0]})
        path = tmp_path / "chart.svg"
        save_chart(str(path), svg)
        assert path.read_text().startswith("<svg")


class TestFigure7Svg:
    def test_panel_renders(self):
        panel = compute_figure7(
            3, m_values=(400, 4000), placements=1,
            params=MachineParams.ncube7(), seed=1,
        )
        svg = render_figure7_svg(panel)
        root = parse(svg)
        assert "Figure 7" in svg
        # every series drawn
        assert len(root.findall(f"{SVG_NS}polyline")) == len(panel.series)
