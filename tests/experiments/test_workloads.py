"""Tests for repro.experiments.workloads — generators + data sensitivity."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.workloads import (
    compute_data_sensitivity,
    generate_workload,
    render_data_sensitivity,
    workload_names,
)


class TestGenerators:
    @pytest.mark.parametrize("name", workload_names())
    def test_shape_and_finiteness(self, name):
        keys = generate_workload(name, 200, rng=1)
        assert keys.shape == (200,)
        assert np.isfinite(keys).all()

    def test_sorted_is_sorted(self):
        keys = generate_workload("sorted", 100, rng=2)
        assert (np.diff(keys) >= 0).all()

    def test_reversed_is_reversed(self):
        keys = generate_workload("reversed", 100, rng=2)
        assert (np.diff(keys) <= 0).all()

    def test_nearly_sorted_is_mostly_sorted(self):
        keys = generate_workload("nearly-sorted", 1000, rng=3)
        inversions = int((np.diff(keys) < 0).sum())
        assert 0 < inversions < 60

    def test_few_distinct(self):
        keys = generate_workload("few-distinct", 500, rng=4)
        assert len(np.unique(keys)) <= 8

    def test_organ_pipe_shape(self):
        keys = generate_workload("organ-pipe", 10, rng=0)
        assert keys.tolist() == [0, 1, 2, 3, 4, 4, 3, 2, 1, 0]

    def test_deterministic_per_seed(self):
        a = generate_workload("uniform", 50, rng=9)
        b = generate_workload("uniform", 50, rng=9)
        np.testing.assert_array_equal(a, b)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            generate_workload("adversarial-quantum", 10)


class TestDataSensitivity:
    @pytest.fixture(scope="class")
    def rows(self):
        return compute_data_sensitivity(m_keys=24 * 100, seed=5)

    def test_all_workloads_present(self, rows):
        assert {r.workload for r in rows} == set(workload_names())

    def test_sorted_fastest(self, rows):
        # Probe skips make pre-sorted input the clear best case.
        by_name = {r.workload: r for r in rows}
        assert by_name["sorted"].elapsed < by_name["uniform"].elapsed
        assert by_name["sorted"].elements_sent < by_name["uniform"].elements_sent

    def test_relative_column_consistent(self, rows):
        by_name = {r.workload: r for r in rows}
        uniform = by_name["uniform"]
        for r in rows:
            assert r.relative_to_uniform == pytest.approx(r.elapsed / uniform.elapsed)

    def test_sensitivity_is_bounded(self, rows):
        # Obliviousness bounds the spread: no workload can exceed the
        # no-skip worst case, which is within ~2x of uniform here.
        rel = [r.relative_to_uniform for r in rows]
        assert max(rel) < 2.0 and min(rel) > 0.3

    def test_sorted_by_time(self, rows):
        times = [r.elapsed for r in rows]
        assert times == sorted(times)

    def test_render(self, rows):
        out = render_data_sensitivity(rows)
        assert "Data sensitivity" in out and "uniform" in out
