"""Tests for repro.faults.detect — incremental on-line diagnosis."""

from __future__ import annotations

import pytest

from repro.faults.detect import DetectionRecord, OnlineDiagnoser
from repro.faults.model import FaultKind, FaultSet


def _truth_of(faulty: set[int]):
    return lambda addr: addr in faulty


class TestConfirmProcessor:
    def test_true_suspicion_confirmed_and_accumulated(self):
        diag = OnlineDiagnoser(3, probe_rtt=10.0, rng=0)
        rec = diag.confirm_processor(5, _truth_of({5}), suspected_at=100.0,
                                     occurred_at=40.0)
        assert rec.faulty and rec.kind == "processor" and rec.subject == 5
        assert rec.method in ("local", "global")
        assert rec.confirmed_at >= rec.suspected_at + diag.probe_rtt
        assert rec.latency == pytest.approx(rec.confirmed_at - 40.0)
        assert diag.known == {5}
        assert diag.confirmed_processors() == (5,)

    def test_false_suspicion_cleared(self):
        diag = OnlineDiagnoser(3, probe_rtt=10.0, rng=0)
        rec = diag.confirm_processor(2, _truth_of(set()), suspected_at=50.0)
        assert not rec.faulty
        assert rec.latency is None
        assert 2 not in diag.known

    def test_already_known_short_circuits(self):
        diag = OnlineDiagnoser(3, known=[5], rng=0)
        rec = diag.confirm_processor(5, _truth_of({5}), suspected_at=7.0)
        assert rec.faulty and rec.method == "known" and rec.rounds == 0
        assert rec.confirmed_at == 7.0

    def test_faulty_testers_excluded_from_panel(self):
        # All neighbors of 0 known faulty: no local panel possible, so the
        # suspicion escalates to the global PMC decode.  (With the suspect
        # isolated, |F| > n and even PMC cannot certify it — the point here
        # is only that the escalation path is taken, not its verdict.)
        diag = OnlineDiagnoser(3, known=[1, 2, 4], rng=0)
        faulty = {1, 2, 4, 0}
        rec = diag.confirm_processor(0, _truth_of(faulty), suspected_at=0.0)
        assert rec.method == "global"
        assert rec.confirmed_at > rec.suspected_at or diag.probe_rtt == 0.0

    def test_verdict_correct_across_seeds(self):
        # Whatever the liars report, the escalation path keeps the verdict
        # exact (|F| <= n): 200 seeded trials, zero wrong verdicts.
        for seed in range(200):
            diag = OnlineDiagnoser(3, rng=seed)
            faulty = {1, 3}
            assert diag.confirm_processor(3, _truth_of(faulty), 0.0).faulty
            assert not diag.confirm_processor(0, _truth_of(faulty), 0.0).faulty

    def test_log_accumulates(self):
        diag = OnlineDiagnoser(3, rng=0)
        diag.confirm_processor(1, _truth_of({1}), 0.0)
        diag.confirm_link(2, 6, suspected_at=5.0)
        assert [r.kind for r in diag.log] == ["processor", "link"]


class TestConfirmLink:
    def test_route_probe_confirmation(self):
        diag = OnlineDiagnoser(3)
        rec = diag.confirm_link(6, 2, suspected_at=10.0, occurred_at=4.0,
                                confirmed_at=12.0)
        assert rec.subject == (2, 6) and rec.method == "route-probe"
        assert rec.latency == pytest.approx(8.0)
        assert (2, 6) in diag.known_links

    def test_re_confirmation_is_known(self):
        diag = OnlineDiagnoser(3)
        diag.confirm_link(2, 6, suspected_at=1.0)
        rec = diag.confirm_link(2, 6, suspected_at=2.0)
        assert rec.method == "known"


class TestFaultView:
    def test_enlarges_base_with_confirmed_faults(self):
        diag = OnlineDiagnoser(3, rng=0)
        diag.confirm_processor(5, _truth_of({5}), 0.0)
        diag.confirm_link(2, 6, suspected_at=0.0)
        base = FaultSet(3, [1], kind=FaultKind.PARTIAL)
        view = diag.fault_view(base)
        assert view.processors == (1, 5)
        assert view.kind is FaultKind.PARTIAL
        assert view.is_link_faulty(2, 6)

    def test_base_links_preserved(self):
        diag = OnlineDiagnoser(3)
        base = FaultSet(3, kind=FaultKind.PARTIAL, links=[(0, 4)])
        view = diag.fault_view(base)
        assert view.is_link_faulty(0, 4)

    def test_faultset_seed_carries_links(self):
        seed = FaultSet(3, [1], kind=FaultKind.PARTIAL, links=[(2, 6)])
        diag = OnlineDiagnoser(3, known=seed)
        assert diag.known == {1}
        assert (2, 6) in diag.known_links


class TestDetectionRecord:
    def test_latency_none_without_occurrence(self):
        rec = DetectionRecord(kind="processor", subject=1, occurred_at=None,
                              suspected_at=1.0, confirmed_at=2.0,
                              faulty=True, method="local")
        assert rec.latency is None
