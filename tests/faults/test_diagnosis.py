"""Tests for repro.faults.diagnosis — the PMC off-line diagnosis substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultSet


class TestSyndrome:
    def test_fault_free_syndrome_all_pass(self):
        syndrome = pmc_syndrome(FaultSet(3), rng=0)
        assert all(v == 0 for v in syndrome.values())
        # every directed neighbor test appears exactly once
        assert len(syndrome) == 8 * 3

    def test_truthful_reports_about_faulty(self):
        fs = FaultSet(3, [5])
        syndrome = pmc_syndrome(fs, rng=0)
        for (tester, tested), outcome in syndrome.items():
            if not fs.is_faulty(tester):
                assert outcome == (1 if tested == 5 else 0)

    def test_faulty_tester_reports_random(self):
        fs = FaultSet(4, [3])
        outs = set()
        for seed in range(16):
            syndrome = pmc_syndrome(fs, rng=seed)
            outs.add(tuple(syndrome[(3, t)] for t in fs.cube.neighbors(3)))
        assert len(outs) > 1  # not deterministic


class TestDiagnosis:
    def test_no_faults(self):
        syndrome = pmc_syndrome(FaultSet(4), rng=1)
        result = diagnose_pmc(4, syndrome)
        assert result.identified == ()
        assert result.consistent

    @pytest.mark.parametrize("n", [3, 4, 5])
    def test_identifies_up_to_n_minus_1_faults(self, n):
        rng = np.random.default_rng(99)
        for trial in range(40):
            r = int(rng.integers(1, n))
            fs = FaultSet(n, random_faulty_processors(n, r, rng))
            syndrome = pmc_syndrome(fs, rng=rng)
            result = diagnose_pmc(n, syndrome)
            assert result.matches(fs), (
                f"n={n} faults={fs.processors} identified={result.identified}"
            )
            assert result.consistent

    def test_single_fault_every_location(self):
        for f in range(16):
            fs = FaultSet(4, [f])
            syndrome = pmc_syndrome(fs, rng=f)
            result = diagnose_pmc(4, syndrome)
            assert result.identified == (f,)

    def test_consistency_flag_checks_budget(self):
        # Hand-build a syndrome where nobody accuses anyone: diagnosis is
        # empty and trivially consistent.
        fs = FaultSet(3)
        syndrome = pmc_syndrome(fs, rng=0)
        result = diagnose_pmc(3, syndrome, max_faults=0)
        assert result.consistent

    def test_result_matches_api(self):
        fs = FaultSet(3, [2])
        syndrome = pmc_syndrome(fs, rng=3)
        result = diagnose_pmc(3, syndrome)
        assert result.matches(fs)
        assert not result.matches(FaultSet(3, [1]))
