"""Property-based test: PMC diagnosis is exact for |F| <= n (hypothesis).

The t-diagnosability theorem behind the paper's off-line assumption says
``Q_n`` is one-step n-diagnosable whenever ``2^n >= 2n + 1`` — i.e. for
every n except 2 (``Q_2`` is only 1-diagnosable: with 2 faults the sets
{0,1} and {2,3} can produce identical syndromes).  The decoder must
therefore identify *exactly* the hidden fault set from any syndrome it can
generate, for every n <= 5, every fault set within the diagnosable bound,
and every arbitrary-report seed for the faulty testers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.model import FaultSet


@st.composite
def _cube_and_faults(draw):
    n = draw(st.integers(min_value=2, max_value=5))
    diagnosable = n if (1 << n) >= 2 * n + 1 else 1  # Q_2 only 1-diagnosable
    r = draw(st.integers(min_value=0, max_value=diagnosable))
    procs = draw(
        st.lists(st.integers(min_value=0, max_value=(1 << n) - 1),
                 min_size=r, max_size=r, unique=True)
    )
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    return n, tuple(procs), seed


class TestPmcExactness:
    @given(_cube_and_faults())
    @settings(max_examples=150, deadline=None)
    def test_diagnosis_identifies_exactly_the_hidden_set(self, case):
        n, procs, seed = case
        hidden = FaultSet(n, procs)
        syndrome = pmc_syndrome(hidden, rng=seed)
        result = diagnose_pmc(n, syndrome, max_faults=n)
        assert result.matches(hidden), (
            f"n={n} hidden={sorted(procs)} seed={seed} "
            f"identified={sorted(result.identified)}"
        )

    @given(_cube_and_faults())
    @settings(max_examples=50, deadline=None)
    def test_diagnosis_reports_consistency(self, case):
        n, procs, seed = case
        hidden = FaultSet(n, procs)
        result = diagnose_pmc(n, pmc_syndrome(hidden, rng=seed), max_faults=n)
        assert result.consistent
