"""Tests for repro.faults.inject — seeded random fault placement."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.inject import random_fault_set, random_faulty_processors, random_link_faults
from repro.faults.model import FaultKind


class TestRandomProcessors:
    def test_count_and_range(self, rng):
        faults = random_faulty_processors(5, 4, rng)
        assert len(faults) == 4
        assert len(set(faults)) == 4
        assert all(0 <= f < 32 for f in faults)

    def test_sorted_output(self, rng):
        faults = random_faulty_processors(6, 5, rng)
        assert list(faults) == sorted(faults)

    def test_deterministic_for_seed(self):
        a = random_faulty_processors(6, 3, 123)
        b = random_faulty_processors(6, 3, 123)
        assert a == b

    def test_different_seeds_differ_sometimes(self):
        draws = {random_faulty_processors(6, 3, seed) for seed in range(20)}
        assert len(draws) > 1

    def test_zero_faults(self, rng):
        assert random_faulty_processors(4, 0, rng) == ()

    def test_all_faulty_allowed_at_injection_level(self, rng):
        assert len(random_faulty_processors(2, 4, rng)) == 4

    def test_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            random_faulty_processors(2, 5, rng)

    def test_uniformity_rough(self):
        # Each address should appear roughly r/2^n of the time.
        rng = np.random.default_rng(7)
        counts = np.zeros(8)
        trials = 4000
        for _ in range(trials):
            for f in random_faulty_processors(3, 2, rng):
                counts[f] += 1
        expected = trials * 2 / 8
        assert np.all(np.abs(counts - expected) < 5 * np.sqrt(expected))


class TestRandomLinks:
    def test_count_and_form(self, rng):
        links = random_link_faults(4, 5, rng)
        assert len(links) == 5
        assert len(set(links)) == 5
        for a, b in links:
            assert a < b
            assert ((a ^ b) & (a ^ b) - 1) == 0  # neighbors: one differing bit

    def test_too_many_rejected(self, rng):
        with pytest.raises(ValueError):
            random_link_faults(2, 5, rng)


class TestRandomFaultSet:
    def test_combined(self, rng):
        fs = random_fault_set(4, 3, kind=FaultKind.PARTIAL, link_faults=2, rng=rng)
        assert fs.r == 3
        assert len(fs.links) == 2
        assert fs.kind is FaultKind.PARTIAL

    def test_single_seed_fixes_everything(self):
        a = random_fault_set(5, 4, link_faults=3, rng=42)
        b = random_fault_set(5, 4, link_faults=3, rng=42)
        assert a == b
