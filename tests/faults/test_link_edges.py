"""Edge-case tests for link faults: sampling bounds, absorption corners,
duplicate rejection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.faults.inject import random_link_faults
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet


class TestRandomLinkFaultsBounds:
    def test_zero_links_allowed(self):
        assert random_link_faults(3, 0, rng=0) == ()

    def test_all_links_allowed(self):
        total = 3 * (1 << 3) // 2  # n * 2^n / 2 links in Q_n
        links = random_link_faults(3, total, rng=0)
        assert len(links) == total
        assert len(set(links)) == total

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError, match="link faults"):
            random_link_faults(3, -1, rng=0)

    def test_count_above_link_total_rejected(self):
        with pytest.raises(ValueError, match="link faults"):
            random_link_faults(3, 13, rng=0)

    def test_pairs_are_valid_edges(self):
        for a, b in random_link_faults(4, 10, rng=7):
            assert a < b
            assert bin(a ^ b).count("1") == 1


class TestBothEndpointsFaulty:
    def test_link_between_faulty_endpoints_absorbs_for_free(self):
        # Both endpoints already faulty: absorption must not designate any
        # additional processor for that link.
        fs = FaultSet(4, [2, 6], kind=FaultKind.PARTIAL, links=[(2, 6)])
        absorbed = absorb_link_faults(fs)
        assert absorbed.processors == (2, 6)
        assert absorbed.is_link_faulty(2, 6)

    def test_sort_survives_link_between_faulty_endpoints(self, rng):
        keys = rng.integers(0, 10**6, size=64).astype(float)
        fs = FaultSet(4, [2, 6], kind=FaultKind.PARTIAL, links=[(2, 6)])
        res = fault_tolerant_sort(keys, 4, fs)
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_total_faults_make_incident_links_faulty_anyway(self):
        fs = FaultSet(3, [2], kind=FaultKind.TOTAL)
        assert fs.is_link_faulty(2, 6) and fs.is_link_faulty(6, 2)
        # Partial faults leave the link up — the NIC survives.
        fs = FaultSet(3, [2], kind=FaultKind.PARTIAL)
        assert not fs.is_link_faulty(2, 6)


class TestDuplicateLinkRejection:
    def test_same_pair_twice_rejected(self):
        with pytest.raises(ValueError, match="duplicate link"):
            FaultSet(3, links=[(2, 6), (2, 6)])

    def test_reversed_pair_is_the_same_link(self):
        with pytest.raises(ValueError, match="duplicate link"):
            FaultSet(3, links=[(2, 6), (6, 2)])

    def test_distinct_links_fine(self):
        fs = FaultSet(3, links=[(2, 6), (0, 1)])
        assert len(fs.links) == 2
