"""Tests for repro.faults.linkplan — absorbing link faults into the plan."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.inject import random_fault_set
from repro.faults.linkplan import absorb_link_faults
from repro.faults.model import FaultKind, FaultSet

from tests.conftest import assert_sorted_output


class TestAbsorb:
    def test_no_links_identity(self):
        fs = FaultSet(4, [3])
        assert absorb_link_faults(fs) is fs

    def test_every_link_covered(self, rng):
        for _ in range(30):
            fs = random_fault_set(5, 2, link_faults=int(rng.integers(1, 5)), rng=rng)
            absorbed = absorb_link_faults(fs)
            for node, dim in absorbed.links:
                a, b = node, node | (1 << dim)
                assert absorbed.is_faulty(a) or absorbed.is_faulty(b)

    def test_existing_fault_reused(self):
        # Link (0, 1) with processor 0 already faulty: nothing new needed.
        fs = FaultSet(3, [0], links=[(0, 1)])
        absorbed = absorb_link_faults(fs)
        assert absorbed.processors == (0,)

    def test_shared_endpoint_covered_once(self):
        # Links (0,1) and (1,3) share endpoint 1: one absorption suffices.
        fs = FaultSet(3, links=[(0, 1), (1, 3)])
        absorbed = absorb_link_faults(fs)
        assert absorbed.processors == (1,)

    def test_disjoint_links_one_each(self):
        fs = FaultSet(3, links=[(0, 1), (6, 7)])
        absorbed = absorb_link_faults(fs)
        assert len(absorbed.processors) == 2

    def test_links_and_kind_preserved(self):
        fs = FaultSet(4, [2], kind=FaultKind.PARTIAL, links=[(4, 5)])
        absorbed = absorb_link_faults(fs)
        assert absorbed.kind is FaultKind.PARTIAL
        assert absorbed.links == fs.links


class TestLinkFaultSorting:
    def test_phase_engine_sorts_around_dead_link(self, rng):
        keys = rng.integers(0, 1000, size=64).astype(float)
        fs = FaultSet(4, kind=FaultKind.PARTIAL, links=[(3, 7)])
        res = fault_tolerant_sort(keys, 4, fs)
        assert_sorted_output(res, keys)
        # the absorbed endpoint holds no keys
        absorbed = absorb_link_faults(fs)
        for p in absorbed.processors:
            assert res.machine.get_block(p).size == 0

    def test_spmd_engine_sorts_around_dead_link(self, rng):
        keys = rng.integers(0, 1000, size=40).astype(float)
        fs = FaultSet(3, kind=FaultKind.PARTIAL, links=[(0, 4)])
        res = spmd_fault_tolerant_sort(keys, 3, fs)
        assert_sorted_output(res, keys)

    def test_dead_link_forces_detour_hops(self, rng):
        # A processor pair whose direct link died must pay extra hops; the
        # machine's hop metric reflects it.
        from repro.simulator.phases import PhaseMachine

        fs = FaultSet(3, kind=FaultKind.PARTIAL, links=[(2, 3)])
        m = PhaseMachine(3, faults=fs)
        assert m.hops(2, 3) == 3  # detour around the dead link

    def test_combined_processor_and_link_faults(self, rng):
        keys = rng.integers(0, 1000, size=90).astype(float)
        fs = FaultSet(5, [9], kind=FaultKind.PARTIAL, links=[(3, 19), (24, 28)])
        res = fault_tolerant_sort(keys, 5, fs)
        assert_sorted_output(res, keys)

    def test_engines_agree_with_link_faults(self, rng):
        keys = rng.integers(0, 500, size=50).astype(float)
        fs = FaultSet(4, [5], kind=FaultKind.PARTIAL, links=[(2, 10)])
        a = fault_tolerant_sort(keys, 4, fs)
        b = spmd_fault_tolerant_sort(keys, 4, fs)
        np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)

    def test_many_absorbed_links_still_sorts(self, rng):
        # Absorbing 4 disjoint dead links in Q_3 gives 4 effective faults
        # (> n-1), but no normal processor gets isolated, so the Section-2.2
        # closing remark applies: the partition degenerates to Q_1 subcubes
        # with a single worker each and the sort still succeeds.
        links = [(0, 1), (2, 3), (4, 5), (6, 7)]
        fs = FaultSet(3, kind=FaultKind.PARTIAL, links=links)
        keys = rng.integers(0, 100, size=20).astype(float)
        res = fault_tolerant_sort(keys, 3, fs)
        assert_sorted_output(res, keys)
        assert res.working_processors == 4

    def test_isolating_absorption_rejected(self):
        # Killing all links of one node isolates it: the model check fires.
        links = [(0, 1), (0, 2), (0, 4)]
        fs = FaultSet(3, kind=FaultKind.TOTAL, links=links)
        absorbed = absorb_link_faults(fs)
        # the greedy cover picks node 0 itself (covers all three), which is
        # fine; force the bad shape by marking the three neighbors faulty.
        bad = FaultSet(3, [1, 2, 4], kind=FaultKind.TOTAL)
        assert bad.has_isolated_normal_processor()
        with pytest.raises(ValueError):
            fault_tolerant_sort([1.0], 3, bad)
        assert absorbed.processors == (0,)
