"""Tests for repro.faults.model — the permanent-fault model."""

from __future__ import annotations

import pytest

from repro.faults.model import FaultKind, FaultSet


class TestConstruction:
    def test_processors_sorted(self):
        fs = FaultSet(4, [9, 3, 0])
        assert fs.processors == (0, 3, 9)
        assert fs.r == len(fs) == 3

    def test_duplicate_processor_rejected(self):
        with pytest.raises(ValueError, match="listed twice"):
            FaultSet(4, [9, 3, 3, 9, 0])

    def test_duplicate_byzantine_rejected(self):
        with pytest.raises(ValueError, match="listed twice"):
            FaultSet(4, [1], byzantine=[5, 5])

    def test_contradictory_kinds_rejected(self):
        # A processor cannot be both crashed (silent) and byzantine.
        with pytest.raises(ValueError, match="both faulty .* and byzantine"):
            FaultSet(4, [3, 5], byzantine=[5, 9])

    def test_byzantine_processors_are_faulty(self):
        fs = FaultSet(4, [3], byzantine=[9, 5])
        assert fs.processors == (3, 5, 9)  # union view for planners/routers
        assert fs.byzantine == (5, 9)
        assert fs.crash == (3,)
        assert fs.is_faulty(5) and fs.is_byzantine(5)
        assert fs.is_faulty(3) and not fs.is_byzantine(3)
        assert fs.r == 3

    def test_byzantine_in_equality_and_hash(self):
        plain = FaultSet(4, [3, 5])
        hybrid = FaultSet(4, [3], byzantine=[5])
        assert plain != hybrid
        assert hash(plain) != hash(hybrid)
        assert hybrid == FaultSet(4, [3], byzantine=[5])

    def test_out_of_range_processor_rejected(self):
        with pytest.raises(ValueError):
            FaultSet(3, [8])

    def test_kind_must_be_enum(self):
        with pytest.raises(TypeError):
            FaultSet(3, [1], kind="total")

    def test_link_faults_canonicalized(self):
        # Endpoint order does not matter; storage is (min_endpoint, dim).
        fs1 = FaultSet(3, links=[(5, 7)])
        fs2 = FaultSet(3, links=[(7, 5)])
        assert fs1.links == fs2.links == ((5, 1),)

    def test_link_faults_reject_non_neighbors(self):
        with pytest.raises(ValueError):
            FaultSet(3, links=[(0, 3)])

    def test_membership_and_iteration(self):
        fs = FaultSet(4, [2, 11])
        assert 2 in fs and 11 in fs and 3 not in fs
        assert list(fs) == [2, 11]

    def test_equality_and_hash(self):
        a = FaultSet(4, [1, 2])
        b = FaultSet(4, [2, 1])
        c = FaultSet(4, [1, 2], kind=FaultKind.PARTIAL)
        assert a == b and hash(a) == hash(b)
        assert a != c


class TestLinkUsability:
    def test_total_fault_kills_incident_links(self):
        fs = FaultSet(3, [0], kind=FaultKind.TOTAL)
        assert fs.is_link_faulty(0, 1)
        assert fs.is_link_faulty(4, 0)
        assert not fs.is_link_faulty(2, 3)

    def test_partial_fault_keeps_links(self):
        fs = FaultSet(3, [0], kind=FaultKind.PARTIAL)
        assert not fs.is_link_faulty(0, 1)

    def test_injected_link_fault_dead_in_both_kinds(self):
        for kind in FaultKind:
            fs = FaultSet(3, links=[(2, 3)], kind=kind)
            assert fs.is_link_faulty(2, 3)
            assert fs.is_link_faulty(3, 2)

    def test_can_route_through(self):
        total = FaultSet(3, [5], kind=FaultKind.TOTAL)
        partial = FaultSet(3, [5], kind=FaultKind.PARTIAL)
        assert not total.can_route_through(5)
        assert partial.can_route_through(5)
        assert total.can_route_through(4)


class TestStructure:
    def test_fault_free_processors(self):
        fs = FaultSet(3, [0, 7])
        assert fs.fault_free_processors() == [1, 2, 3, 4, 5, 6]

    def test_paper_model_satisfied_when_r_small(self):
        assert FaultSet(4, [0, 1, 2]).satisfies_paper_model()

    def test_paper_model_with_surrounded_processor(self):
        # Node 0's neighbors in Q_2 are {1, 2}; with both faulty, node 0 is
        # isolated and r = 2 = n, violating the model.
        fs = FaultSet(2, [1, 2])
        assert fs.has_isolated_normal_processor()
        assert not fs.satisfies_paper_model()

    def test_paper_model_r_equal_n_but_no_isolation(self):
        # Q_3 with 3 faults that do not surround anyone: model's closing
        # remark says the partition still applies.
        fs = FaultSet(3, [0, 3, 7])
        assert fs.r == 3
        assert not fs.has_isolated_normal_processor()
        assert fs.satisfies_paper_model()

    def test_connected_under_n_minus_1_total_faults(self, rng):
        n = 4
        for _ in range(30):
            picks = rng.choice(1 << n, size=n - 1, replace=False).tolist()
            assert FaultSet(n, picks, kind=FaultKind.TOTAL).is_connected()

    def test_disconnection_detected(self):
        # Q_2: faulting 1 and 2 cuts 3 off from 0.
        fs = FaultSet(2, [1, 2], kind=FaultKind.TOTAL)
        assert not fs.is_connected()

    def test_partial_always_connected(self):
        fs = FaultSet(2, [1, 2], kind=FaultKind.PARTIAL)
        assert fs.is_connected()

    def test_dimension_mismatch_not_allowed_in_sort(self):
        from repro.core.ftsort import fault_tolerant_sort

        with pytest.raises(ValueError):
            fault_tolerant_sort([1.0], 3, FaultSet(4, [1]))
