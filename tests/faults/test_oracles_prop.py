"""Property-based tests: dislocation oracles and fault injectors (hypothesis).

Three contracts the tolerance-aware oracle framework stands on:

* every disorder metric is exactly 0 on a sorted array (the fault-free
  campaign must never trip the oracle);
* the comparison injector's flip set is *nested* in ``p`` — raising the
  rate only adds lies, never retracts one — which is what makes the
  per-class survival curves monotone-by-construction;
* the same seeded injector produces the same flips for the same operand
  values regardless of array layout, the property the cross-kernel
  byte-identity parity rests on.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.faults.injectors import ComparisonInjector, MemoryInjector
from repro.faults.oracles import (
    comparison_tolerance,
    max_dislocation,
    multiset_delta,
    unordered_pairs,
)

_keys = st.lists(
    st.integers(min_value=0, max_value=10**6 - 1), min_size=1, max_size=64
).map(lambda xs: np.asarray(xs, dtype=float))


class TestMetricsZeroOnSorted:
    @given(_keys)
    @settings(max_examples=100, deadline=None)
    def test_sorted_arrays_have_zero_disorder(self, keys):
        ordered = np.sort(keys)
        assert max_dislocation(ordered) == 0
        assert unordered_pairs(ordered) == 0
        assert multiset_delta(ordered, keys) == 0

    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_metrics_detect_any_real_shuffle(self, keys, seed):
        rng = np.random.default_rng(seed)
        shuffled = rng.permutation(keys)
        ordered = np.sort(keys)
        if np.array_equal(shuffled, ordered):
            assert max_dislocation(shuffled) == 0
        else:
            assert max_dislocation(shuffled) > 0
            assert unordered_pairs(shuffled) > 0
        # A permutation never changes the multiset.
        assert multiset_delta(shuffled, keys) == 0


class TestDislocationBounds:
    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_dislocation_bounded_by_size(self, keys, seed):
        rng = np.random.default_rng(seed)
        shuffled = rng.permutation(keys)
        assert 0 <= max_dislocation(shuffled) <= keys.size - 1

    @given(st.floats(min_value=0.0, max_value=0.05),
           st.integers(min_value=2, max_value=4096),
           st.integers(min_value=1, max_value=64))
    @settings(max_examples=100, deadline=None)
    def test_tolerance_is_monotone_in_p_and_within_range(self, p, m, block):
        tol_d, tol_u = comparison_tolerance(p, m, block)
        assert 0 <= tol_d <= m - 1
        assert 0 <= tol_u <= m * (m - 1) // 2
        tighter_d, tighter_u = comparison_tolerance(p / 2, m, block)
        assert tighter_d <= tol_d
        assert tighter_u <= tol_u


class TestFlipMonotoneInP:
    @given(_keys,
           st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.0, max_value=0.5),
           st.floats(min_value=0.0, max_value=0.5))
    @settings(max_examples=100, deadline=None)
    def test_flip_sets_nest(self, keys, seed, p_lo, p_hi):
        # The flip fires when hash < p * 2^64, so the flip set at a lower
        # rate is a subset of the set at any higher rate: survival curves
        # are monotone by construction, not by luck.
        if p_lo > p_hi:
            p_lo, p_hi = p_hi, p_lo
        rng = np.random.default_rng(seed)
        other = rng.permutation(keys)
        lo = ComparisonInjector(p_lo, seed=seed).flip_pairs(keys, other)
        hi = ComparisonInjector(p_hi, seed=seed).flip_pairs(keys, other)
        assert not np.any(lo & ~hi)

    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_p_zero_never_lies_p_one_always_lies(self, keys, seed):
        rng = np.random.default_rng(seed)
        other = rng.permutation(keys)
        assert not ComparisonInjector(0.0, seed=seed).flip_pairs(keys, other).any()
        assert ComparisonInjector(1.0, seed=seed).flip_pairs(keys, other).all()

    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_pads_never_lie(self, keys, seed, p):
        # +inf padding travels through the network; a lie on a pad
        # comparison could strand a dummy among real keys, so the injector
        # categorically refuses to flip non-finite operands.
        inj = ComparisonInjector(p, seed=seed)
        pads = np.full_like(keys, np.inf)
        assert not inj.flip_pairs(keys, pads, record=False).any()
        assert not inj.flip_pairs(pads, keys, record=False).any()

    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, deadline=None)
    def test_flips_are_symmetric_and_persistent(self, keys, seed, p):
        # Persistent per key-pair (Geissmann et al.): the same unordered
        # value pair always gets the same verdict, whichever side asks.
        rng = np.random.default_rng(seed)
        other = rng.permutation(keys)
        inj = ComparisonInjector(p, seed=seed)
        ab = inj.flip_pairs(keys, other, record=False)
        ba = inj.flip_pairs(other, keys, record=False)
        again = inj.flip_pairs(keys, other, record=False)
        assert np.array_equal(ab, ba)
        assert np.array_equal(ab, again)


class TestMemoryInjector:
    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1),
           st.floats(min_value=0.0, max_value=0.3))
    @settings(max_examples=60, deadline=None)
    def test_corruption_is_deterministic_and_real_cells_only(self, keys, seed, alpha):
        pad = 3
        a = np.concatenate([keys, np.full(pad, np.inf)])
        b = a.copy()
        inj_a = MemoryInjector(alpha, seed=seed)
        inj_b = MemoryInjector(alpha, seed=seed)
        hits_a = inj_a.corrupt(a, keys.size)
        hits_b = inj_b.corrupt(b, keys.size)
        assert hits_a == hits_b == inj_a.corrupted
        assert np.array_equal(a, b)
        # Padding is control structure, never data: it stays untouched.
        assert np.isinf(a[keys.size:]).all()
        # Every corrupted cell actually changed.
        assert int((a[:keys.size] != keys).sum()) == hits_a

    @given(_keys, st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_alpha_zero_is_identity(self, keys, seed):
        a = keys.copy()
        assert MemoryInjector(0.0, seed=seed).corrupt(a, keys.size) == 0
        assert np.array_equal(a, keys)
