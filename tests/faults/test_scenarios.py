"""Tests for repro.faults.scenarios — named canonical fault placements."""

from __future__ import annotations

import pytest

from repro.core.partition import find_min_cuts
from repro.faults.model import FaultKind
from repro.faults.scenarios import SCENARIOS, make_scenario, scenario_names


class TestScenarios:
    def test_names_listed(self):
        assert "paper-example1" in scenario_names()
        assert set(scenario_names()) == set(SCENARIOS)

    def test_paper_example1(self):
        fs = make_scenario("paper-example1", 5)
        assert fs.processors == (3, 5, 16, 24)

    def test_paper_example1_wrong_dim_rejected(self):
        with pytest.raises(ValueError):
            make_scenario("paper-example1", 6)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            make_scenario("meteor-strike", 5)

    def test_kind_propagates(self):
        fs = make_scenario("antipodal-pair", 4, kind=FaultKind.TOTAL)
        assert fs.kind is FaultKind.TOTAL

    @pytest.mark.parametrize("name", ["single-corner", "antipodal-pair",
                                      "adjacent-pair", "clustered", "scattered"])
    @pytest.mark.parametrize("n", [4, 5, 6])
    def test_all_valid_on_common_dims(self, name, n):
        fs = make_scenario(name, n)
        assert fs.satisfies_paper_model()
        assert all(0 <= p < (1 << n) for p in fs.processors)

    def test_clustered_needs_more_cuts_than_scattered(self):
        # The structural point of the two shapes.
        n = 6
        clustered = find_min_cuts(n, make_scenario("clustered", n)).mincut
        scattered = find_min_cuts(n, make_scenario("scattered", n)).mincut
        assert clustered >= scattered

    def test_scattered_is_spread_out(self):
        fs = make_scenario("scattered", 6)
        from repro.cube.address import hamming_distance

        pairs = [
            hamming_distance(a, b)
            for i, a in enumerate(fs.processors)
            for b in fs.processors[i + 1:]
        ]
        assert min(pairs) >= 2

    def test_clustered_is_tight(self):
        fs = make_scenario("clustered", 6)
        from repro.cube.address import hamming_distance

        assert all(hamming_distance(0, p) <= 1 for p in fs.processors)
