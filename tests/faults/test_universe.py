"""The pluggable fault-class registry and its four non-baseline universes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.chaos.schedule import ChaosScenario, random_scenario
from repro.faults.universe import (
    FaultClass,
    fault_class_names,
    fault_class_summaries,
    get_fault_class,
    register_fault_class,
)

ALL_CLASSES = ("baseline", "comparison", "memory", "hybrid", "abft")


def _scenario(fault_class: str, *, scenario_id=0, seed=1992, n=3, keys=48,
              backend="phase", statics=(), params=()) -> ChaosScenario:
    return ChaosScenario(
        scenario_id=scenario_id, seed=seed, n=n, keys=keys, backend=backend,
        static_processors=tuple(statics), static_links=(), events=(),
        fault_class=fault_class, fault_params=tuple(params),
    )


class TestRegistry:
    def test_all_four_classes_plus_baseline_registered(self):
        assert fault_class_names() == ALL_CLASSES

    def test_unknown_class_error_names_the_registry(self):
        with pytest.raises(ValueError, match="baseline, comparison, memory"):
            get_fault_class("gremlins")

    def test_summaries_cover_every_class(self):
        summaries = fault_class_summaries()
        assert set(summaries) == set(ALL_CLASSES)
        assert all(summaries.values())

    def test_duplicate_registration_rejected(self):
        class Dup(FaultClass):
            name = "comparison"

            def run(self, scenario, params=None, reliability=None):
                raise NotImplementedError

        with pytest.raises(ValueError, match="already registered"):
            register_fault_class(Dup())

    def test_each_class_declares_its_curve(self):
        for name in ALL_CLASSES:
            cls = get_fault_class(name)
            if name == "baseline":
                assert cls.curve_param is None
            else:
                assert cls.curve_param is not None
                assert len(cls.strata) >= 3


class TestDrawParams:
    def test_strata_cycle_with_variant(self):
        cls = get_fault_class("comparison")
        rng = np.random.default_rng(0)
        values = [cls.draw_params(rng, v)[0][1] for v in range(6)]
        assert tuple(values[:3]) == cls.strata
        assert values[:3] == values[3:]

    def test_baseline_draws_nothing(self):
        rng = np.random.default_rng(0)
        assert get_fault_class("baseline").draw_params(rng, 0) == ()


@pytest.mark.parametrize("backend", ["phase", "spmd"])
class TestClassRuns:
    def test_comparison_survives_default_strata(self, backend):
        cls = get_fault_class("comparison")
        out = cls.run(_scenario("comparison", backend=backend,
                                params=(("p", 0.002),)))
        assert out.recovered
        assert out.passed
        assert out.oracle["kind"] == "max-dislocation"
        assert out.oracle["max_dislocation"] <= out.oracle["tolerance_dislocation"]
        assert out.oracle["multiset_ok"]

    def test_memory_survives_and_reports_corruption(self, backend):
        cls = get_fault_class("memory")
        out = cls.run(_scenario("memory", backend=backend,
                                params=(("alpha", 0.05),)))
        assert out.passed
        assert out.oracle["kind"] == "bounded-multiset"
        assert out.oracle["unordered_pairs"] == 0
        assert out.oracle["multiset_delta"] <= 2 * out.oracle["corrupted"]

    def test_hybrid_diagnoses_mixed_faults_exactly(self, backend):
        cls = get_fault_class("hybrid")
        out = cls.run(_scenario("hybrid", backend=backend, statics=(2, 5),
                                params=(("byz_frac", 0.5),)))
        assert out.passed
        assert out.oracle["diagnosis_ok"]
        assert set(out.oracle["identified"]) == {2, 5}
        assert out.oracle["crash"] == 1
        assert out.oracle["byzantine"] == 1

    def test_abft_detects_exactly_when_multiset_altered(self, backend):
        cls = get_fault_class("abft")
        clean = cls.run(_scenario("abft", backend=backend,
                                  params=(("gamma", 0.0),)))
        assert clean.passed
        assert not clean.oracle["detected"]
        dirty = cls.run(_scenario("abft", backend=backend,
                                  params=(("gamma", 0.05),)))
        assert dirty.passed
        assert dirty.oracle["carried_blocks_ok"]
        assert dirty.oracle["detected"] == dirty.oracle["multiset_altered"]


class TestGeneratorIntegration:
    def test_classes_cycle_after_backends(self):
        classes = ("baseline", "comparison")
        backends = ("phase", "spmd")
        drawn = [
            random_scenario(i, 7, backends=backends, fault_classes=classes)
            for i in range(8)
        ]
        assert [s.backend for s in drawn] == ["phase", "spmd"] * 4
        assert [s.fault_class for s in drawn] == (
            ["baseline", "baseline", "comparison", "comparison"] * 2)

    def test_needs_static_guarantees_a_fault(self):
        for i in range(0, 40):
            s = random_scenario(i, 3, fault_classes=("hybrid",))
            assert len(s.static_processors) >= 1

    def test_default_campaign_unchanged(self):
        # The single-baseline draw must stay byte-identical to the
        # historical generator: old reports replay, old seeds reproduce.
        a = random_scenario(5, 1992)
        b = random_scenario(5, 1992, fault_classes=("baseline",))
        assert a == b
        assert a.fault_class == "baseline"
        assert a.fault_params == ()

    def test_scenario_dict_round_trip(self):
        s = random_scenario(9, 3, fault_classes=("memory",))
        assert s.fault_class == "memory"
        assert s.fault_params
        assert ChaosScenario.from_dict(s.to_dict()) == s

    def test_legacy_scenario_dicts_still_parse(self):
        d = random_scenario(2, 4).to_dict()
        del d["fault_class"]
        del d["fault_params"]
        s = ChaosScenario.from_dict(d)
        assert s.fault_class == "baseline"
        assert s.fault_params == ()
