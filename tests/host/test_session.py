"""Tests for repro.host.session — full distribute-sort-collect sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultKind, FaultSet
from repro.host import sort_session

from tests.conftest import assert_sorted_output


class TestSortSession:
    def test_sorts_fault_free(self, rng):
        keys = rng.integers(0, 500, size=45).astype(float)
        s = sort_session(keys, 3, [])
        assert_sorted_output(s, keys)

    def test_sorts_with_faults(self, rng):
        keys = rng.integers(0, 500, size=60).astype(float)
        s = sort_session(keys, 4, [2, 9, 12])
        assert_sorted_output(s, keys)

    def test_paper_scenario(self, rng):
        keys = rng.integers(0, 1000, size=47).astype(float)
        s = sort_session(keys, 5, [3, 5, 16, 24])
        assert_sorted_output(s, keys)

    def test_total_faults(self, rng):
        keys = rng.integers(0, 500, size=30).astype(float)
        s = sort_session(keys, 4, [1, 6], fault_kind=FaultKind.TOTAL)
        assert_sorted_output(s, keys)

    def test_segment_times_positive_and_sum(self, rng):
        keys = rng.integers(0, 500, size=100).astype(float)
        s = sort_session(keys, 4, [3])
        assert s.distribution_time > 0
        assert s.sort_time > 0
        assert s.collection_time > 0
        assert s.total_time == pytest.approx(
            s.distribution_time + s.sort_time + s.collection_time
        )

    def test_default_host_is_lowest_worker(self, rng):
        s = sort_session(rng.random(20), 3, [0])
        assert s.host == min(s.schedule.output_order)

    def test_explicit_host(self, rng):
        keys = rng.random(24)
        s = sort_session(keys, 3, [0], host=7)
        assert s.host == 7
        assert_sorted_output(s, keys)

    def test_non_working_host_rejected(self):
        with pytest.raises(ValueError):
            sort_session([1.0], 3, [0], host=0)

    def test_sort_segment_matches_pure_spmd_sort(self, rng):
        # The sort segment must produce the same result as the
        # distribution-free SPMD sort.
        keys = rng.integers(0, 500, size=50).astype(float)
        faults = [1, 6]
        s = sort_session(keys, 4, faults)
        pure = spmd_fault_tolerant_sort(keys, 4, faults)
        np.testing.assert_array_equal(s.sorted_keys, pure.sorted_keys)

    def test_distribution_scales_with_keys(self, rng):
        small = sort_session(rng.random(24), 4, [3]).distribution_time
        large = sort_session(rng.random(240), 4, [3]).distribution_time
        assert large > small

    def test_random_sweep(self, rng):
        for _ in range(6):
            n = int(rng.integers(2, 5))
            r = int(rng.integers(0, n))
            faults = list(random_faulty_processors(n, r, rng))
            keys = rng.integers(0, 100, size=int(rng.integers(1, 50))).astype(float)
            s = sort_session(keys, n, faults)
            assert_sorted_output(s, keys)

    def test_dangling_processors_relay(self, rng):
        # With the paper's faults, dangling processors hold no keys but
        # must relay scatter/gather traffic: they appear in the tree.
        keys = rng.random(30)
        faults = [3, 5, 16, 24]
        s = sort_session(keys, 5, faults)
        fs = FaultSet(5, faults)
        tree_members = set(fs.fault_free_processors())
        workers = set(s.schedule.output_order)
        assert workers < tree_members  # dangling ranks participate too
