"""Graceful shutdown of the supervisor: mid-run interrupts must not wedge.

Two interruption styles:

* **Injected** — a monkeypatched inner sort raises ``KeyboardInterrupt``
  partway through a supervised recovery, deterministically.
* **Asynchronous** — a timer thread fires ``_thread.interrupt_main()``
  while supervised sorts run in a loop, the honest simulation of a user's
  Ctrl-C landing at an arbitrary point.

In both cases the interrupt must propagate unchanged (no swallowing, no
conversion to a "failed" result), the tracer's live-span stack must be
fully unwound (``depth == 0`` — spans are context managers, so an
interrupt that leaks one would corrupt every later trace on the thread),
and a subsequent run must work from a clean slate.
"""

from __future__ import annotations

import _thread
import threading

import numpy as np
import pytest

import repro.host.session as session_mod
from repro.host.session import FaultEvent, supervised_sort
from repro.obs import Tracer

KEYS = np.random.default_rng(7).integers(0, 10**6, size=256).astype(float)


class TestInjectedInterrupt:
    def test_interrupt_mid_recovery_propagates_and_unwinds(self, monkeypatch):
        tracer = Tracer()
        real = session_mod.fault_tolerant_sort
        calls = []

        def interrupting(*args, **kwargs):
            calls.append(1)
            if len(calls) == 2:  # first attempt aborts, re-plan, then ^C
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(session_mod, "fault_tolerant_sort", interrupting)
        with tracer.span("supervised", cat="test"):
            with pytest.raises(KeyboardInterrupt):
                supervised_sort(
                    KEYS, 4, faults=(3,),
                    events=[FaultEvent("processor", 9, at=10.0)],
                    backend="phase", obs=tracer,
                )
        assert len(calls) == 2
        assert tracer.depth == 0

    def test_clean_run_after_interrupt(self, monkeypatch):
        real = session_mod.fault_tolerant_sort
        armed = [True]

        def interrupting(*args, **kwargs):
            if armed[0]:
                armed[0] = False
                raise KeyboardInterrupt
            return real(*args, **kwargs)

        monkeypatch.setattr(session_mod, "fault_tolerant_sort", interrupting)
        with pytest.raises(KeyboardInterrupt):
            supervised_sort(KEYS, 4, faults=(3,), backend="phase")
        report = supervised_sort(KEYS, 4, faults=(3,), backend="phase")
        assert np.array_equal(report.sorted_keys, np.sort(KEYS))


class TestAsyncInterrupt:
    def test_interrupt_main_lands_between_or_inside_runs(self):
        tracer = Tracer()
        timer = threading.Timer(0.15, _thread.interrupt_main)
        timer.start()
        try:
            with pytest.raises(KeyboardInterrupt):
                # The loop guarantees the interrupt finds us here (or in a
                # supervised run) whenever it fires; each iteration is a
                # full sort, so it regularly lands mid-run.
                while True:
                    supervised_sort(KEYS, 4, faults=(3, 9), backend="phase",
                                    obs=tracer)
        finally:
            timer.cancel()
        assert tracer.depth == 0
        # The world still works afterwards.
        report = supervised_sort(KEYS, 4, faults=(3, 9), backend="phase")
        assert np.array_equal(report.sorted_keys, np.sort(KEYS))
