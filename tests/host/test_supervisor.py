"""Tests for repro.host.session supervised recovery (supervised_sort)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.faults.model import FaultKind, FaultSet
from repro.host import FaultEvent, supervised_sort
from repro.obs import Tracer


def _keys(rng, m=48):
    return rng.integers(0, 10**6, size=m).astype(float)


def _mid(keys, n, faults=(), frac=0.4):
    """A strike time landing mid-run: a fraction of the nominal duration."""
    return frac * fault_tolerant_sort(keys, n, faults).elapsed


class TestFaultEvent:
    def test_valid_processor_and_link(self):
        FaultEvent("processor", 5, at=10.0).validate(3)
        FaultEvent("link", (2, 6), at=0.0).validate(3)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError, match="kind"):
            FaultEvent("node", 5, at=1.0).validate(3)

    def test_rejects_negative_time(self):
        with pytest.raises(ValueError, match="time"):
            FaultEvent("processor", 5, at=-1.0).validate(3)

    def test_rejects_out_of_range_address(self):
        with pytest.raises(ValueError):
            FaultEvent("processor", 8, at=0.0).validate(3)

    def test_rejects_non_edge_link(self):
        with pytest.raises(ValueError, match="edge"):
            FaultEvent("link", (0, 3), at=0.0).validate(3)


class TestSupervisedPhase:
    def test_no_events_matches_plain_sort(self, rng):
        keys = _keys(rng)
        res = supervised_sort(keys, 3, backend="phase", rng=0)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.recoveries == 0 and len(res.attempts) == 1
        assert res.recovery_overhead == pytest.approx(1.0)

    def test_midrun_processor_fault_recovers(self, rng):
        keys = _keys(rng)
        res = supervised_sort(
            keys, 3, events=[FaultEvent("processor", 5, at=_mid(keys, 3))],
            backend="phase", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.recoveries >= 1
        assert 5 in res.final_faults.processors
        assert res.recovery_overhead > 1.0
        assert res.total_time == pytest.approx(
            res.wasted_time + res.rescue_time + res.redistribution_time
            + res.final_sort_time
        )

    def test_midrun_link_fault_recovers(self, rng):
        keys = _keys(rng)
        res = supervised_sort(
            keys, 3, events=[FaultEvent("link", (2, 6), at=_mid(keys, 3))],
            backend="phase", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.final_faults.is_link_faulty(2, 6)

    def test_fault_during_distribution(self, rng):
        keys = _keys(rng)
        res = supervised_sort(
            keys, 3, events=[FaultEvent("processor", 1, at=0.0)],
            backend="phase", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert 1 in res.final_faults.processors

    def test_fault_after_completion_confirmed_without_recovery(self, rng):
        keys = _keys(rng)
        res = supervised_sort(
            keys, 3, events=[FaultEvent("processor", 5, at=10**9)],
            backend="phase", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.recoveries == 0
        assert any(r.subject == 5 and r.faulty for r in res.detections)

    def test_static_plus_multiple_events(self, rng):
        keys = _keys(rng, 64)
        res = supervised_sort(
            keys, 4,
            faults=FaultSet(4, [3], kind=FaultKind.PARTIAL),
            events=[FaultEvent("processor", 9, at=_mid(keys, 4, [3], 0.3)),
                    FaultEvent("link", (0, 4), at=_mid(keys, 4, [3], 0.7))],
            backend="phase", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert {3, 9} <= set(res.final_faults.processors)
        assert res.final_faults.is_link_faulty(0, 4)

    def test_robust_metrics_emitted(self, rng):
        keys = _keys(rng)
        obs = Tracer()
        res = supervised_sort(
            keys, 3, events=[FaultEvent("processor", 6, at=_mid(keys, 3))],
            backend="phase", rng=0, obs=obs,
        )
        m = obs.metrics
        assert m.value("robust.recoveries") == res.recoveries
        assert m.gauge("robust.total_time").value == pytest.approx(res.total_time)
        assert m.gauge("robust.recovery_overhead").value == pytest.approx(
            res.recovery_overhead
        )


class TestSupervisedSpmd:
    def test_midrun_processor_fault_recovers(self, rng):
        keys = _keys(rng)
        res = supervised_sort(
            keys, 3, events=[FaultEvent("processor", 5, at=_mid(keys, 3))],
            backend="spmd", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.recoveries >= 1
        assert 5 in res.final_faults.processors
        # The watchdog confirmed the death through actual neighbor tests.
        assert any(r.subject == 5 and r.method in ("local", "global")
                   for r in res.detections)

    def test_midrun_link_fault_recovers(self, rng):
        keys = _keys(rng)
        res = supervised_sort(
            keys, 3, events=[FaultEvent("link", (2, 6), at=_mid(keys, 3, frac=0.25))],
            backend="spmd", rng=0,
        )
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_no_events_single_attempt(self, rng):
        keys = _keys(rng)
        res = supervised_sort(keys, 3, backend="spmd", rng=0)
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert res.recoveries == 0 and len(res.attempts) == 1


class TestValidation:
    def test_rejects_total_fault_model(self, rng):
        with pytest.raises(ValueError, match="partial"):
            supervised_sort(_keys(rng), 3,
                            faults=FaultSet(3, [1], kind=FaultKind.TOTAL))

    def test_rejects_unknown_backend(self, rng):
        with pytest.raises(ValueError, match="backend"):
            supervised_sort(_keys(rng), 3, backend="mpi")

    def test_rejects_mismatched_cube(self, rng):
        with pytest.raises(ValueError, match="Q_4"):
            supervised_sort(_keys(rng), 3,
                            faults=FaultSet(4, [1], kind=FaultKind.PARTIAL))
