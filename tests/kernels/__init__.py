"""Tests for repro.kernels — pluggable execution backends."""
