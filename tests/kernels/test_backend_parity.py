"""Property tests: the numpy and loop backends are indistinguishable.

The contract of :mod:`repro.kernels` is that backend choice changes
*execution strategy only*: sorted outputs are byte-identical and every
comparison/traffic count is identical.  Hypothesis drives both backends
over random block sizes, descending flags, and dead-node (empty) sentinel
blocks, and a small end-to-end fault-tolerant sort pins the whole-pipeline
statement.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.ftsort import fault_tolerant_sort
from repro.kernels import get_backend
from repro.kernels.numpy_backend import heapsort_batch
from repro.sorting.heapsort import heapsort

NUMPY = get_backend("numpy")
LOOP = get_backend("loop")

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=32)
blocks_strategy = st.lists(
    st.lists(finite, min_size=1, max_size=24), min_size=1, max_size=10
).map(lambda rows: [np.asarray(r, dtype=float) for r in rows])


def _equalize(rows: list[np.ndarray]) -> np.ndarray:
    width = min(len(r) for r in rows)
    return np.stack([r[:width] for r in rows])


class TestLocalSortParity:
    @given(blocks=blocks_strategy, descending=st.booleans())
    def test_batched_sort_matches_loop_and_scalar(self, blocks, descending):
        batch = _equalize(blocks)
        out_np, comps_np = NUMPY.sort_blocks_counted(batch, descending=descending)
        out_loop, comps_loop = LOOP.sort_blocks_counted(batch, descending=descending)
        np.testing.assert_array_equal(out_np, out_loop)
        np.testing.assert_array_equal(comps_np, comps_loop)
        for t in range(batch.shape[0]):
            row, comps = heapsort(batch[t], descending=descending)
            np.testing.assert_array_equal(out_np[t], row)
            assert int(comps_np[t]) == comps

    @given(blocks=blocks_strategy, descending=st.booleans())
    def test_values_only_sort_matches(self, blocks, descending):
        batch = _equalize(blocks)
        np.testing.assert_array_equal(
            NUMPY.sort_blocks(batch, descending=descending),
            LOOP.sort_blocks(batch, descending=descending),
        )

    @given(block=st.lists(finite, min_size=0, max_size=40))
    def test_single_block_matches(self, block):
        arr = np.asarray(block, dtype=float)
        out_np, c_np = NUMPY.sort_block_counted(arr)
        out_loop, c_loop = LOOP.sort_block_counted(arr)
        np.testing.assert_array_equal(out_np, out_loop)
        assert c_np == c_loop
        np.testing.assert_array_equal(NUMPY.sort_block(arr), LOOP.sort_block(arr))

    def test_heapsort_batch_handles_width_zero_and_one(self):
        for width in (0, 1):
            batch = np.zeros((3, width))
            out, comps = heapsort_batch(batch)
            assert out.shape == batch.shape
            assert comps.tolist() == [0, 0, 0]


class TestSplitParity:
    @given(
        data=st.lists(finite, min_size=2, max_size=48).filter(lambda v: len(v) % 2 == 0)
    )
    def test_split_pair_matches(self, data):
        half = len(data) // 2
        a = np.sort(np.asarray(data[:half], dtype=float))
        b = np.sort(np.asarray(data[half:], dtype=float))
        low_np, high_np = NUMPY.split_pair(a, b)
        low_loop, high_loop = LOOP.split_pair(a, b)
        np.testing.assert_array_equal(low_np, low_loop)
        np.testing.assert_array_equal(high_np, high_loop)
        # Exchange-split lemma: low holds the k smallest of the union.
        union = np.sort(np.concatenate([a, b]))
        np.testing.assert_array_equal(low_np, union[:half])
        np.testing.assert_array_equal(high_np, union[half:])

    @given(blocks=blocks_strategy)
    def test_split_blocks_matches_per_pair(self, blocks):
        batch = _equalize(blocks)
        if batch.shape[0] < 2:
            batch = np.vstack([batch, batch])
        half = batch.shape[0] // 2
        a = np.sort(batch[:half], axis=1)
        b = np.sort(batch[half : 2 * half], axis=1)
        lows_np, highs_np = NUMPY.split_blocks(a, b)
        lows_loop, highs_loop = LOOP.split_blocks(a, b)
        np.testing.assert_array_equal(lows_np, lows_loop)
        np.testing.assert_array_equal(highs_np, highs_loop)

    @given(
        data=st.lists(finite, min_size=2, max_size=48).filter(lambda v: len(v) % 2 == 0),
        want_min=st.booleans(),
    )
    def test_cx_winners_losers_matches(self, data, want_min):
        half = len(data) // 2
        mine = np.sort(np.asarray(data[:half], dtype=float))
        received = np.sort(np.asarray(data[half:], dtype=float))
        w_np, l_np = NUMPY.cx_winners_losers(mine, received, want_min)
        w_loop, l_loop = LOOP.cx_winners_losers(mine, received, want_min)
        np.testing.assert_array_equal(w_np, w_loop)
        np.testing.assert_array_equal(l_np, l_loop)

    @given(
        a=st.lists(finite, min_size=0, max_size=24),
        b=st.lists(finite, min_size=0, max_size=24),
    )
    def test_merge_runs_matches(self, a, b):
        run_a = np.sort(np.asarray(a, dtype=float))
        run_b = np.sort(np.asarray(b, dtype=float))
        np.testing.assert_array_equal(
            NUMPY.merge_runs(run_a, run_b), LOOP.merge_runs(run_a, run_b)
        )


class TestEndToEndParity:
    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=4),
        keys=st.integers(min_value=0, max_value=120),
        exact=st.booleans(),
    )
    def test_ftsort_identical_across_backends(self, seed, n, keys, exact):
        rng = np.random.default_rng(seed)
        r = int(rng.integers(0, n))
        faults = sorted(rng.choice(1 << n, size=r, replace=False).tolist())
        key_arr = rng.integers(0, 10**6, size=keys).astype(float)
        results = {
            name: fault_tolerant_sort(
                key_arr, n, faults, exact_counts=exact, kernels=name
            )
            for name in ("numpy", "loop")
        }
        a, b = results["numpy"], results["loop"]
        np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)
        np.testing.assert_array_equal(a.sorted_keys, np.sort(key_arr))
        assert a.elapsed == b.elapsed
        assert a.output_order == b.output_order
        for addr in a.output_order:
            np.testing.assert_array_equal(
                a.machine.get_block(addr), b.machine.get_block(addr)
            )
