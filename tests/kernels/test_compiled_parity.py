"""Property tests: the compiled schedule tier is indistinguishable.

The ``compiled`` backend lowers a :class:`~repro.core.schedule.SortSchedule`
to flat index arrays and executes every substage as a handful of whole-key-
matrix numpy operations — but its contract is the same as every other
backend's: *execution strategy only*.  Sorted outputs are byte-identical,
the simulated clock is bit-identical, and every per-phase counter (the
comparison/traffic accounting the paper's cost model is built on) matches
the per-processor ``loop`` interpreter exactly.  Hypothesis drives all
three backends over dimensions, key counts (including block skew from
padding), fault plans (fault-free, single-fault, and multi-fault plans with
mirror substages), and exact/worst-case local counting; further tests pin
obs counter parity, plan-cache warm replay, and the honest-accounting
identity tying actual traffic to the schedule's closed-form worst case.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ftsort import fault_tolerant_sort, plan_partition
from repro.core.schedule import build_ft_schedule
from repro.obs.spans import Tracer
from repro.plancache.cache import PLAN_CACHE
from repro.simulator.params import MachineParams

BACKENDS = ("loop", "numpy", "compiled")
PAPER_FAULTS = [3, 5, 16, 24]


def _record_tuple(rec):
    return (rec.label, rec.duration, rec.comparisons, rec.elements_sent,
            rec.element_hops, rec.messages)


def _assert_identical(a, b):
    """Full result parity: output bytes, clock, phases, final placement."""
    np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)
    assert a.sorted_keys.tobytes() == b.sorted_keys.tobytes()
    assert a.elapsed == b.elapsed  # bit-exact, not approx
    assert a.output_order == b.output_order
    assert a.block_size == b.block_size
    assert len(a.machine.phases) == len(b.machine.phases)
    for ra, rb in zip(a.machine.phases, b.machine.phases):
        assert _record_tuple(ra) == _record_tuple(rb)
    for addr in a.output_order:
        np.testing.assert_array_equal(
            a.machine.get_block(addr), b.machine.get_block(addr)
        )


def _run_all(keys, n, faults, exact=False, params=None):
    return {
        name: fault_tolerant_sort(keys, n, faults, exact_counts=exact,
                                  params=params, kernels=name)
        for name in BACKENDS
    }


class TestCompiledParity:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=10_000),
        n=st.integers(min_value=2, max_value=5),
        keys=st.integers(min_value=0, max_value=200),
        exact=st.booleans(),
    )
    def test_three_way_parity(self, seed, n, keys, exact):
        rng = np.random.default_rng(seed)
        r = int(rng.integers(0, n))
        faults = sorted(rng.choice(1 << n, size=r, replace=False).tolist())
        key_arr = rng.integers(0, 10**6, size=keys).astype(float)
        results = _run_all(key_arr, n, faults, exact=exact)
        np.testing.assert_array_equal(
            results["compiled"].sorted_keys, np.sort(key_arr)
        )
        _assert_identical(results["loop"], results["compiled"])
        _assert_identical(results["numpy"], results["compiled"])

    @pytest.mark.parametrize("keys_count", [1, 13, 24, 25, 47, 96])
    def test_block_skew_from_padding(self, keys_count):
        """Key counts that don't divide the worker count exercise padding."""
        rng = np.random.default_rng(keys_count)
        key_arr = rng.integers(0, 10**6, size=keys_count).astype(float)
        results = _run_all(key_arr, 5, PAPER_FAULTS)
        np.testing.assert_array_equal(
            results["compiled"].sorted_keys, np.sort(key_arr)
        )
        _assert_identical(results["loop"], results["compiled"])

    def test_mirror_substages_match(self):
        """The paper scenario's plan has mirror substages — swap-only
        traffic must land in the same phase records as the interpreter."""
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        assert sch.mirror_pair_count() > 0  # scenario really exercises mirrors
        rng = np.random.default_rng(99)
        key_arr = rng.integers(0, 10**6, size=120).astype(float)
        results = _run_all(key_arr, 5, PAPER_FAULTS)
        _assert_identical(results["loop"], results["compiled"])

    @pytest.mark.parametrize("params", [MachineParams.ncube2(), MachineParams.unit()])
    def test_parity_across_machine_params(self, params):
        rng = np.random.default_rng(5)
        key_arr = rng.integers(0, 10**6, size=64).astype(float)
        results = _run_all(key_arr, 4, [3, 9, 14], params=params)
        _assert_identical(results["loop"], results["compiled"])

    def test_empty_input(self):
        results = _run_all(np.asarray([], dtype=float), 3, [5])
        assert results["compiled"].sorted_keys.size == 0
        _assert_identical(results["loop"], results["compiled"])


class TestObsParity:
    @pytest.mark.parametrize("n,faults", [(4, []), (4, [5]), (5, PAPER_FAULTS)])
    def test_sort_counters_and_phase_spans_match(self, n, faults):
        rng = np.random.default_rng(17)
        key_arr = rng.integers(0, 10**6, size=100).astype(float)
        tracers = {}
        for name in ("loop", "compiled"):
            tr = Tracer()
            fault_tolerant_sort(key_arr, n, faults, kernels=name, obs=tr)
            tracers[name] = tr
        a, b = tracers["loop"], tracers["compiled"]
        assert set(a.metrics.counters) == set(b.metrics.counters)
        for cname, counter in a.metrics.counters.items():
            assert counter.value == b.metrics.counters[cname].value, cname
        phase = lambda tr: sorted(
            (s.name, s.ts, s.dur) for s in tr.spans if s.cat == "phase"
        )
        assert phase(a) == phase(b)
        steps = lambda tr: {
            (s.name, s.ts, s.dur) for s in tr.spans if s.cat == "step"
        }
        assert steps(a) == steps(b)


class TestPlanCacheReplay:
    def test_warm_replay_hits_compiled_section(self):
        rng = np.random.default_rng(7)
        key_arr = rng.integers(0, 10**6, size=96).astype(float)
        PLAN_CACHE.clear()
        hits0 = PLAN_CACHE.hits["compiled"]
        misses0 = PLAN_CACHE.misses["compiled"]
        cold = fault_tolerant_sort(key_arr, 5, PAPER_FAULTS, kernels="compiled")
        assert PLAN_CACHE.misses["compiled"] == misses0 + 1
        warm = fault_tolerant_sort(key_arr, 5, PAPER_FAULTS, kernels="compiled")
        assert PLAN_CACHE.hits["compiled"] == hits0 + 1
        _assert_identical(cold, warm)

    def test_cache_off_identical(self):
        rng = np.random.default_rng(7)
        key_arr = rng.integers(0, 10**6, size=96).astype(float)
        on = fault_tolerant_sort(key_arr, 5, PAPER_FAULTS, kernels="compiled")
        PLAN_CACHE.configure(enabled=False)
        try:
            off = fault_tolerant_sort(key_arr, 5, PAPER_FAULTS, kernels="compiled")
        finally:
            PLAN_CACHE.configure(enabled=True)
        _assert_identical(on, off)


class TestHonestAccounting:
    def test_traffic_matches_closed_form_worst_case(self):
        """worst_case_elements == actual traffic + the 2k saved per probe-skip.

        Ties the schedule's closed-form bound (which charges every cx pair a
        full exchange) to the executed run: the only traffic ever elided is
        the two full blocks of a probe-skipped comparator, and mirror pairs
        always move their blocks.
        """
        rng = np.random.default_rng(3)
        key_arr = rng.integers(0, 10**6, size=120).astype(float)
        _, sel = plan_partition(5, PAPER_FAULTS)
        sch = build_ft_schedule(sel)
        tr = Tracer()
        result = fault_tolerant_sort(key_arr, 5, PAPER_FAULTS,
                                     kernels="compiled", obs=tr)
        k = result.block_size
        skipped = tr.metrics.counters["sort.cx.skipped"].value
        total_sent = sum(rec.elements_sent for rec in result.machine.phases)
        assert sch.worst_case_elements(k) == total_sent + 2 * k * skipped

    def test_mirror_phases_have_traffic_but_no_comparisons(self):
        rng = np.random.default_rng(3)
        key_arr = rng.integers(0, 10**6, size=120).astype(float)
        result = fault_tolerant_sort(key_arr, 5, PAPER_FAULTS, kernels="compiled")
        mirrors = [rec for rec in result.machine.phases
                   if rec.label.endswith("]b")]
        assert mirrors
        for rec in mirrors:
            assert rec.comparisons == 0
            assert rec.elements_sent > 0
            assert rec.messages > 0
