"""Comparison-fault injection preserves the cross-backend parity contract.

The repo's core guarantee is that ``loop``, ``numpy``, and ``compiled``
kernels — and the phase and SPMD engines — produce byte-identical sorted
output.  Injected comparator lies must not break that: the flip decision
is a pure symmetric hash of the two operand *values*, so every backend
lies about exactly the same duels and the (mis-sorted) outputs stay
identical.  This is what makes a comparison-fault campaign result
meaningful: a survival difference between backends would be an engine
bug, never injection noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.injectors import ComparisonInjector, comparison_faults
from repro.faults.model import FaultKind, FaultSet
from repro.faults.oracles import multiset_delta

KERNELS = ("loop", "numpy", "compiled")


def _keys(seed: int, m: int = 96) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.integers(0, 10**6, m).astype(float)


@pytest.mark.parametrize("p", [0.0, 0.002, 0.02])
@pytest.mark.parametrize("fault_procs", [(), (3, 5)], ids=["r0", "r2"])
class TestInjectionByteIdentity:
    def test_phase_engines_identical_under_lies(self, p, fault_procs):
        keys = _keys(7)
        faults = FaultSet(4, fault_procs, kind=FaultKind.PARTIAL)
        outputs = {}
        stats = {}
        for kern in KERNELS:
            inj = ComparisonInjector(p, seed=42)
            with comparison_faults(inj):
                res = fault_tolerant_sort(keys, 4, faults, kernels=kern)
            outputs[kern] = res.sorted_keys
            stats[kern] = (inj.fired, inj.fired_probe, inj.evaluated)
        base = outputs["loop"]
        for kern in KERNELS[1:]:
            assert np.array_equal(base, outputs[kern]), (
                f"{kern} diverged from loop at p={p}")
            assert stats[kern] == stats["loop"], (
                f"{kern} fired different lies than loop at p={p}")
        # Lies reroute keys; they never create or destroy them.
        assert multiset_delta(base, np.sort(keys)) == 0

    def test_spmd_matches_phase_under_lies(self, p, fault_procs):
        keys = _keys(11)
        faults = FaultSet(4, fault_procs, kind=FaultKind.PARTIAL)
        inj_phase = ComparisonInjector(p, seed=42)
        with comparison_faults(inj_phase):
            phase = fault_tolerant_sort(keys, 4, faults, kernels="numpy")
        inj_spmd = ComparisonInjector(p, seed=42)
        with comparison_faults(inj_spmd):
            spmd = spmd_fault_tolerant_sort(keys, 4, faults, kernels="numpy")
        assert np.array_equal(phase.sorted_keys, spmd.sorted_keys)
        # Same logical duels, same lies (the SPMD low side records for
        # the pair, mirroring the phase engine's one-decision-per-pair).
        assert (inj_phase.fired, inj_phase.fired_probe) == (
            inj_spmd.fired, inj_spmd.fired_probe)


class TestInjectionScoping:
    def test_no_injection_without_context(self):
        # The injector is context-scoped: outside `with comparison_faults`
        # the kernels take their exact fault-free paths.
        keys = _keys(3)
        res = fault_tolerant_sort(keys, 4, [], kernels="numpy")
        assert np.array_equal(res.sorted_keys, np.sort(keys))

    def test_p_zero_injection_is_exact(self):
        keys = _keys(5)
        inj = ComparisonInjector(0.0, seed=1)
        with comparison_faults(inj):
            res = fault_tolerant_sort(keys, 4, [3], kernels="compiled")
        assert np.array_equal(res.sorted_keys, np.sort(keys))
        assert inj.fired == 0
        assert inj.evaluated > 0  # the duels were consulted, all truthful
