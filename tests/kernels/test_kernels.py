"""Unit tests for the kernel layer and the parallel execution plumbing.

Covers the backend registry, the heapsort copy semantics, batched
exchange-phase equivalence on a real machine, the memoized partition DFS
against its reference implementation, SPMD backend parity, and the
parallel chaos/artifact runners (``jobs > 1`` must be indistinguishable
from serial).
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.chaos.campaign import run_campaign
from repro.core.partition import _find_min_cuts_reference, find_min_cuts
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.kernels import (
    KernelBackend,
    available_backends,
    default_backend_name,
    get_backend,
    resolve_backend,
    set_default_backend,
)
from repro.parallel import effective_cpu_count, resolve_jobs, run_tasks
from repro.simulator.phases import PhaseMachine
from repro.sorting.bitonic_cube import run_exchange_jobs, substage_pairs
from repro.sorting.heapsort import heapsort


class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ("compiled", "loop", "numpy")

    def test_get_backend_returns_instances(self):
        assert get_backend("numpy").batched
        assert not get_backend("loop").batched
        for name in available_backends():
            assert isinstance(get_backend(name), KernelBackend)
            assert get_backend(name).name == name

    def test_get_backend_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kernel backend"):
            get_backend("cuda")

    def test_resolve_backend_forms(self):
        loop = get_backend("loop")
        assert resolve_backend(loop) is loop
        assert resolve_backend("loop") is loop
        assert resolve_backend(None).name == default_backend_name()

    def test_env_var_selects_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "loop")
        set_default_backend(None)
        assert default_backend_name() == "loop"
        assert resolve_backend(None) is get_backend("loop")
        monkeypatch.setenv("REPRO_KERNELS", "not-a-backend")
        assert default_backend_name() == "numpy"

    def test_set_default_backend_round_trip(self):
        try:
            set_default_backend("loop")
            assert default_backend_name() == "loop"
            with pytest.raises(ValueError, match="unknown kernel backend"):
                set_default_backend("cuda")
            assert default_backend_name() == "loop"
        finally:
            set_default_backend(None)
        assert default_backend_name() == "numpy"


class TestHeapsortCopySemantics:
    def test_list_input_sorts(self):
        out, comps = heapsort([3.0, 1.0, 2.0])
        assert out.tolist() == [1.0, 2.0, 3.0]
        assert comps > 0

    def test_ndarray_input_not_modified(self, rng):
        src = rng.permutation(64).astype(float)
        before = src.copy()
        out, _ = heapsort(src)
        np.testing.assert_array_equal(src, before)
        np.testing.assert_array_equal(out, np.sort(before))

    def test_view_input_not_modified(self, rng):
        base = rng.permutation(32).astype(float)
        view = base[4:20]
        before = base.copy()
        heapsort(view)
        np.testing.assert_array_equal(base, before)

    def test_readonly_input_handled(self, rng):
        src = rng.permutation(16).astype(float)
        src.flags.writeable = False
        out, _ = heapsort(src)
        np.testing.assert_array_equal(out, np.sort(src))


def _exchange_machine(n: int, width: int, seed: int) -> PhaseMachine:
    rng = np.random.default_rng(seed)
    machine = PhaseMachine(n)
    for addr in range(1 << n):
        machine.set_block(addr, np.sort(rng.integers(0, 1000, size=width)).astype(float))
    return machine


class TestRunExchangeJobsParity:
    """Batched (numpy) and per-pair (loop) exchange phases are identical."""

    @pytest.mark.parametrize("probe", [True, False])
    def test_backends_agree_on_full_substage(self, probe):
        jobs = [(low, high, keep_min, None)
                for low, high, keep_min in substage_pairs(3, 2, 2)]
        machines = {}
        for name in ("numpy", "loop"):
            m = _exchange_machine(3, 16, seed=42)
            with m.phase("cx"):
                run_exchange_jobs(m, jobs, kernels=name, probe=probe)
            machines[name] = m
        a, b = machines["numpy"], machines["loop"]
        assert a.elapsed == b.elapsed
        assert a.total_comparisons() == b.total_comparisons()
        assert a.total_elements_sent() == b.total_elements_sent()
        for addr in range(8):
            np.testing.assert_array_equal(a.get_block(addr), b.get_block(addr))

    def test_empty_side_is_free(self):
        m = _exchange_machine(1, 8, seed=7)
        m.set_block(1, np.asarray([]))
        with m.phase("cx"):
            run_exchange_jobs(m, [(0, 1, True, None)])
        assert m.elapsed == 0.0
        assert m.get_block(1).size == 0

    def test_probe_skips_presplit_pair(self):
        m = _exchange_machine(1, 8, seed=7)
        m.set_block(0, np.arange(8.0))
        m.set_block(1, np.arange(8.0) + 100.0)
        with m.phase("cx"):
            run_exchange_jobs(m, [(0, 1, True, None)], probe=True)
        probed = m.elapsed
        assert m.total_elements_sent() == 2  # the two probe keys only

        m2 = _exchange_machine(1, 8, seed=7)
        m2.set_block(0, np.arange(8.0))
        m2.set_block(1, np.arange(8.0) + 100.0)
        with m2.phase("cx"):
            run_exchange_jobs(m2, [(0, 1, True, None)], probe=False)
        assert m2.total_elements_sent() > 2
        assert m2.elapsed > probed


class TestPartitionMemoMatchesReference:
    def test_fixed_example(self):
        for faults in ([0, 6, 9], [3, 5, 16, 24], [0], []):
            n = 5 if max(faults, default=0) > 15 else 4
            got = find_min_cuts(n, faults)
            ref = _find_min_cuts_reference(n, faults)
            assert got.mincut == ref.mincut
            assert got.cutting_set == ref.cutting_set

    def test_randomized_parity(self, rng):
        for _ in range(60):
            n = int(rng.integers(2, 7))
            r = int(rng.integers(0, n))
            faults = sorted(rng.choice(1 << n, size=r, replace=False).tolist())
            got = find_min_cuts(n, faults)
            ref = _find_min_cuts_reference(n, faults)
            assert (got.mincut, got.cutting_set) == (ref.mincut, ref.cutting_set)

    def test_max_depth_error_parity(self):
        faults = [0, 1, 2, 3]
        with pytest.raises(ValueError) as new_err:
            find_min_cuts(4, faults, max_depth=1)
        with pytest.raises(ValueError) as ref_err:
            _find_min_cuts_reference(4, faults, max_depth=1)
        assert str(new_err.value) == str(ref_err.value)


class TestSpmdBackendParity:
    def test_identical_results_across_kernels(self, rng):
        n = 3
        keys = rng.integers(0, 10**6, size=70).astype(float)
        results = {
            name: spmd_fault_tolerant_sort(keys, n, [5], kernels=name)
            for name in ("numpy", "loop")
        }
        a, b = results["numpy"], results["loop"]
        np.testing.assert_array_equal(a.sorted_keys, b.sorted_keys)
        np.testing.assert_array_equal(a.sorted_keys, np.sort(keys))
        assert a.finish_time == b.finish_time
        assert sorted(a.blocks) == sorted(b.blocks)
        for rank in a.blocks:
            np.testing.assert_array_equal(a.blocks[rank], b.blocks[rank])


def _square(x: int) -> int:
    return x * x


def _boom(x: int) -> int:
    raise RuntimeError(f"task {x} failed")


class TestRunTasks:
    def test_serial_preserves_order_and_progress(self):
        seen = []
        out = run_tasks(_square, [3, 1, 2], jobs=1,
                        progress=lambda done, total, r: seen.append((done, total, r)))
        assert out == [9, 1, 4]
        assert seen == [(1, 3, 9), (2, 3, 1), (3, 3, 4)]

    def test_parallel_results_in_task_order(self):
        tasks = list(range(12))
        assert run_tasks(_square, tasks, jobs=3) == [x * x for x in tasks]

    def test_parallel_exception_propagates(self):
        with pytest.raises(RuntimeError, match=r"task [23] failed"):
            run_tasks(_boom, [2, 3], jobs=2)

    def test_resolve_jobs(self):
        assert resolve_jobs(4) == 4
        assert resolve_jobs(None) == effective_cpu_count()
        assert resolve_jobs(0) == effective_cpu_count()
        with pytest.raises(ValueError):
            resolve_jobs(-1)

    def test_effective_cpu_count_honors_affinity(self):
        count = effective_cpu_count()
        assert count >= 1
        if hasattr(os, "sched_getaffinity"):
            assert count == len(os.sched_getaffinity(0))
        assert count <= (os.cpu_count() or count)


class TestParallelCampaignMatchesSerial:
    def test_jobs2_identical_to_serial(self, tmp_path):
        outs = {}
        for jobs in (1, 2):
            path = tmp_path / f"report_{jobs}.jsonl"
            summary = run_campaign(count=6, seed=11, out=str(path),
                                   n_choices=(3,), max_keys=40, jobs=jobs)
            outs[jobs] = (summary, path.read_text())
        s1, lines1 = outs[1]
        s2, lines2 = outs[2]
        assert lines1 == lines2
        assert (s1.scenarios, s1.passed, s1.recoveries, s1.retries) == (
            s2.scenarios, s2.passed, s2.recoveries, s2.retries)
        assert s1.mean_detect_latency == s2.mean_detect_latency


class TestParallelRunnerMatchesSerial:
    def test_jobs2_artifacts_identical_to_serial(self, tmp_path):
        from repro.experiments.runner import run_all

        manifests = {}
        for jobs in (1, 2):
            out = tmp_path / f"results_{jobs}"
            manifests[jobs] = run_all(str(out), quick=True, seed=7, jobs=jobs)
        assert manifests[1] == manifests[2]
        for name in manifests[1]:
            a = (tmp_path / "results_1" / name).read_bytes()
            b = (tmp_path / "results_2" / name).read_bytes()
            assert a == b, f"artifact {name} differs between serial and jobs=2"
        # MANIFEST differs only in the wall-clock/jobs header line.
        m1 = (tmp_path / "results_1" / "MANIFEST.txt").read_text().splitlines()
        m2 = (tmp_path / "results_2" / "MANIFEST.txt").read_text().splitlines()
        assert [l for l in m1 if "wall-clock" not in l] == \
               [l for l in m2 if "wall-clock" not in l]
