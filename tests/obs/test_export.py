"""Unit tests for trace export (repro.obs.export)."""

from __future__ import annotations

import json

from repro.obs.export import (
    chrome_trace_events,
    flame_report,
    span_stats,
    step_durations,
    step_report,
    write_chrome_trace,
)
from repro.obs.spans import Tracer


def _sample_tracer() -> Tracer:
    tracer = Tracer()
    tracer.name_process(0, "simulated machine")
    tracer.name_thread(0, "algorithm steps", pid=0)
    tracer.complete("ftsort", ts=0.0, dur=100.0, cat="step", pid=0, tid=0)
    tracer.complete("step3a:local-heapsort", ts=0.0, dur=30.0, cat="step",
                    pid=0, tid=0)
    tracer.complete("step3b:intra-init", ts=30.0, dur=20.0, cat="step",
                    pid=0, tid=0)
    tracer.complete("step7:inter[i=0,j=0]", ts=50.0, dur=40.0, cat="step",
                    pid=0, tid=0, args={"pairs": 4})
    tracer.complete("hop 0->1", ts=5.0, dur=3.0, cat="link", pid=1, tid=1)
    return tracer


class TestChromeTrace:
    def test_schema(self):
        events = chrome_trace_events(_sample_tracer())
        meta = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 2
        assert len(spans) == 5
        assert meta[0]["name"] == "process_name"
        assert meta[0]["args"] == {"name": "simulated machine"}
        for ev in spans:
            for field in ("name", "cat", "ph", "ts", "dur", "pid", "tid"):
                assert field in ev, field
        by_name = {e["name"]: e for e in spans}
        assert by_name["step7:inter[i=0,j=0]"]["args"] == {"pairs": 4}
        assert "args" not in by_name["ftsort"]

    def test_write_round_trip(self, tmp_path):
        path = tmp_path / "trace.json"
        count = write_chrome_trace(str(path), _sample_tracer())
        data = json.loads(path.read_text())
        assert isinstance(data, list)
        assert len(data) == count == 7
        assert {e["ph"] for e in data} == {"M", "X"}


class TestSelfTime:
    def test_nested_self_time(self):
        stats = {s.name: s for s in span_stats(_sample_tracer(), cats=("step",))}
        # ftsort covers 100us, its direct children cover 30 + 20 + 40.
        assert stats["ftsort"].total == 100.0
        assert stats["ftsort"].self_time == 10.0
        assert stats["step3a:local-heapsort"].self_time == 30.0

    def test_sorted_by_self_time(self):
        stats = span_stats(_sample_tracer())
        selfs = [s.self_time for s in stats]
        assert selfs == sorted(selfs, reverse=True)

    def test_flame_report_renders(self):
        text = flame_report(_sample_tracer(), top=3)
        assert "hottest spans" in text
        assert "step7:inter[i=0,j=0]" in text
        assert flame_report(Tracer()).endswith("(no spans recorded)")


class TestStepDurations:
    def test_folds_substeps(self):
        steps = step_durations(_sample_tracer())
        # step3a + step3b fold into step3; the root ftsort span is excluded.
        assert steps == {"step3": 50.0, "step7": 40.0}

    def test_report_renders(self):
        text = step_report(_sample_tracer())
        assert "step3" in text and "step7" in text
        assert step_report(Tracer()).endswith("(no step spans recorded)")

    def test_numeric_ordering(self):
        tracer = Tracer()
        for k in (10, 2, 1):
            tracer.complete(f"step{k}:x", ts=0.0, dur=1.0)
        assert list(step_durations(tracer)) == ["step1", "step2", "step10"]
