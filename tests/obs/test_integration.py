"""End-to-end observability tests across both execution backends.

The heart of this module is the cross-backend parity check DESIGN.md
promises: the same oblivious comparator schedule, executed on the phase
engine and on the discrete-event SPMD machine, must report *identical*
logical counters — compare-exchanges executed, compare-exchanges skipped
by the boundary probe, mirror pairs, and total point-to-point messages.
The probe decisions depend on block contents, so this parity is a strong
statement that the two backends move exactly the same data.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ftsort import fault_tolerant_sort
from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.model import FaultSet
from repro.obs import Tracer, step_durations
from repro.simulator.phases import PhaseMachine
from repro.simulator.spmd import SpmdMachine

PARITY_COUNTERS = (
    "sort.cx.executed",
    "sort.cx.skipped",
    "sort.mirror.pairs",
    "sort.messages",
)


def _sort_counters(metrics) -> dict[str, float]:
    return {name: metrics.value(name) for name in PARITY_COUNTERS}


class TestCrossBackendParity:
    @pytest.mark.parametrize(
        "n,faults",
        [
            (4, [1, 6]),        # r=2, partitioned path
            (4, [3]),           # r=1, single-fault path
            (3, []),            # r=0, plain bitonic
            (5, [3, 9, 17]),    # r=3
        ],
        ids=["q4-r2", "q4-r1", "q3-r0", "q5-r3"],
    )
    def test_logical_counters_match(self, rng, n, faults):
        # Block size >= 2 so the message-count equivalence of the two
        # compare-split realizations holds (k = 1 diverges: the phase
        # engine has no return leg to charge, the SPMD programs still
        # exchange empty loser messages).
        keys = rng.random(4 * (1 << n))
        obs_phase, obs_spmd = Tracer(), Tracer()
        res_a = fault_tolerant_sort(keys, n, faults, obs=obs_phase)
        res_b = spmd_fault_tolerant_sort(keys, n, faults, obs=obs_spmd)
        np.testing.assert_array_equal(res_a.sorted_keys, res_b.sorted_keys)
        counters_a = _sort_counters(obs_phase.metrics)
        counters_b = _sort_counters(obs_spmd.metrics)
        assert counters_a == counters_b
        assert counters_a["sort.cx.executed"] > 0

    def test_message_counter_matches_engines(self, rng):
        """sort.messages agrees with what each engine itself counted."""
        keys = rng.random(4 * 16)
        obs_phase, obs_spmd = Tracer(), Tracer()
        fault_tolerant_sort(keys, 4, [1, 6], obs=obs_phase)
        spmd_fault_tolerant_sort(keys, 4, [1, 6], obs=obs_spmd)
        mp, ms = obs_phase.metrics, obs_spmd.metrics
        assert mp.value("sort.messages") == mp.value("phase.messages")
        assert ms.value("sort.messages") == ms.value("engine.messages")
        assert ms.value("spmd.messages_sent") == ms.value("engine.messages")


class TestStepSpans:
    def test_all_eight_steps_recorded(self, rng):
        keys = rng.random(4 * 64)
        obs = Tracer()
        fault_tolerant_sort(keys, 6, [7, 25, 52], obs=obs)
        steps = step_durations(obs)
        assert list(steps) == [f"step{k}" for k in range(1, 9)]
        # Host-side planning steps carry no simulated time; the heavy
        # steps must.
        assert steps["step1"] == 0.0
        assert steps["step2"] == 0.0
        for heavy in ("step3", "step4", "step7", "step8"):
            assert steps[heavy] > 0.0, heavy
        # Step 4 spans cover whole merge stages, so they nest steps 5-8.
        assert steps["step4"] >= steps["step7"]
        root = [sp for sp in obs.spans if sp.name == "ftsort"]
        assert len(root) == 1
        assert root[0].dur == max(sp.end for sp in obs.spans)

    def test_r1_path_records_spans(self, rng):
        keys = rng.random(3 * 16)
        obs = Tracer()
        fault_tolerant_sort(keys, 4, [5], obs=obs)
        steps = step_durations(obs)
        assert steps["step3"] > 0.0
        assert any(sp.name == "ftsort" for sp in obs.spans)
        assert any(sp.cat == "phase" for sp in obs.spans)

    def test_phase_spans_tile_the_timeline(self, rng):
        """Phase spans are contiguous: each starts where the last ended."""
        keys = rng.random(4 * 16)
        obs = Tracer()
        res = fault_tolerant_sort(keys, 4, [1, 6], obs=obs)
        phases = [sp for sp in obs.spans if sp.cat == "phase"]
        assert phases, "no phase spans recorded"
        cursor = 0.0
        for sp in phases:
            assert sp.ts == pytest.approx(cursor)
            cursor = sp.end
        assert cursor == pytest.approx(res.elapsed)


class TestTracerNeutrality:
    def test_phase_engine_timing_unchanged(self, rng):
        """Attaching a tracer must not change simulated results."""
        keys = rng.random(4 * 16)
        res_plain = fault_tolerant_sort(keys, 4, [1, 6])
        res_traced = fault_tolerant_sort(keys, 4, [1, 6], obs=Tracer())
        assert res_plain.elapsed == res_traced.elapsed
        np.testing.assert_array_equal(res_plain.sorted_keys,
                                      res_traced.sorted_keys)

    def test_spmd_engine_timing_unchanged(self, rng):
        keys = rng.random(4 * 16)
        res_plain = spmd_fault_tolerant_sort(keys, 4, [1, 6])
        res_traced = spmd_fault_tolerant_sort(keys, 4, [1, 6], obs=Tracer())
        assert res_plain.finish_time == res_traced.finish_time
        np.testing.assert_array_equal(res_plain.sorted_keys,
                                      res_traced.sorted_keys)

    def test_default_machines_use_null_tracer(self):
        assert PhaseMachine(3).obs.enabled is False
        assert SpmdMachine(3, faults=FaultSet(3)).obs.enabled is False


class TestEngineLifecycleEvents:
    def test_spmd_trace_has_all_layers(self, rng):
        keys = rng.random(4 * 16)
        obs = Tracer()
        spmd_fault_tolerant_sort(keys, 4, [1, 6], obs=obs)
        cats = {sp.cat for sp in obs.spans}
        assert {"link", "msg", "proc"} <= cats
        msgs = [sp for sp in obs.spans if sp.cat == "msg"]
        assert len(msgs) == obs.metrics.value("engine.messages")
        hops = [sp for sp in obs.spans if sp.cat == "link"]
        assert len(hops) == obs.metrics.value("engine.hops")
        # Every hop span carries its link and queue delay.
        for sp in hops[:10]:
            assert set(sp.args) >= {"link", "src", "dst", "size", "queue_delay"}

    def test_host_session_segments(self, rng):
        from repro.host.session import sort_session

        keys = rng.random(3 * 16)
        obs = Tracer()
        session = sort_session(keys, 4, [5], obs=obs)
        segs = {sp.name: sp for sp in obs.spans if sp.cat == "segment"}
        assert set(segs) == {"host.distribute", "host.sort", "host.collect"}
        assert segs["host.distribute"].dur == pytest.approx(
            session.distribution_time
        )
        assert segs["host.collect"].end == pytest.approx(session.total_time)

    def test_collectives_record_spans_and_counters(self):
        from repro.comm.collectives import allreduce

        obs = Tracer()
        machine = SpmdMachine(3, faults=FaultSet(3), obs=obs)

        def program(proc):
            total = yield from allreduce(proc, 3, value=proc.rank)
            assert total == sum(range(8))

        machine.run(program)
        m = obs.metrics
        assert m.value("collective.allreduce.calls") == 8
        assert m.value("collective.reduce.calls") == 8
        assert m.value("collective.broadcast.calls") == 8
        names = {sp.name for sp in obs.spans if sp.cat == "collective"}
        assert names == {"allreduce", "reduce", "broadcast"}
