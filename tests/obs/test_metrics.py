"""Unit tests for the metrics registry (repro.obs.metrics)."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_counter_math(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        c.inc(0)
        assert c.value == 5

    def test_counter_rejects_negative(self):
        c = Counter("c")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_registry_inc_accumulates(self):
        reg = MetricsRegistry()
        for _ in range(3):
            reg.inc("sort.messages", 2)
        assert reg.value("sort.messages") == 6
        assert reg.value("missing") == 0
        assert reg.value("missing", default=7) == 7


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(1.5)
        g.set(2.5)
        assert g.value == 2.5

    def test_registry_set(self):
        reg = MetricsRegistry()
        reg.set_gauge("finish", 123.0)
        assert reg.gauge("finish").value == 123.0


class TestHistogram:
    def test_streaming_stats(self):
        h = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == 6.0
        assert h.min == 1.0
        assert h.max == 3.0
        assert h.mean == 2.0

    def test_empty_to_dict(self):
        assert Histogram("h").to_dict() == {
            "count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0
        }


class TestRegistry:
    def test_create_on_use_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_to_dict_is_json_serializable(self):
        reg = MetricsRegistry()
        reg.inc("z.count", 3)
        reg.set_gauge("a.gauge", 1.25)
        reg.observe("m.hist", 10.0)
        snapshot = json.loads(json.dumps(reg.to_dict()))
        assert snapshot["counters"] == {"z.count": 3}
        assert snapshot["gauges"] == {"a.gauge": 1.25}
        assert snapshot["histograms"]["m.hist"]["count"] == 1

    def test_summary_renders_all_kinds(self):
        reg = MetricsRegistry()
        reg.inc("c")
        reg.set_gauge("g", 2.0)
        reg.observe("h", 5.0)
        text = reg.summary()
        for token in ("c", "g", "h", "metrics:"):
            assert token in text
        assert MetricsRegistry().summary() == "metrics:\n  (empty)"


class TestNullMetrics:
    def test_writes_are_dropped(self):
        NULL_METRICS.inc("x", 100)
        NULL_METRICS.set_gauge("y", 1.0)
        NULL_METRICS.observe("z", 1.0)
        assert NULL_METRICS.value("x") == 0
        assert NULL_METRICS.to_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_inert_instruments_are_shared(self):
        assert NULL_METRICS.counter("a") is NULL_METRICS.counter("b")
        NULL_METRICS.counter("a").inc(10)
        assert NULL_METRICS.counter("a").value == 0
