"""Unit tests for the span tracer (repro.obs.spans)."""

from __future__ import annotations

import threading

from repro.obs.spans import (
    NULL_TRACER,
    PID_SIM,
    TID_ALGO,
    NullTracer,
    Span,
    Tracer,
    wall_clock_us,
)


class TestLiveSpans:
    def test_span_records_on_exit(self):
        t = [0.0]
        tracer = Tracer(clock=lambda: t[0])
        with tracer.span("outer", cat="test"):
            t[0] = 10.0
        assert len(tracer.spans) == 1
        sp = tracer.spans[0]
        assert (sp.name, sp.ts, sp.dur, sp.cat) == ("outer", 0.0, 10.0, "test")

    def test_nesting_depth_and_order(self):
        t = [0.0]
        tracer = Tracer(clock=lambda: t[0])
        with tracer.span("outer"):
            assert tracer.depth == 1
            t[0] = 1.0
            with tracer.span("inner"):
                assert tracer.depth == 2
                t[0] = 3.0
            t[0] = 7.0
        assert tracer.depth == 0
        # Inner closes first, so it is recorded first.
        assert [sp.name for sp in tracer.spans] == ["inner", "outer"]
        inner, outer = tracer.spans
        assert inner.ts >= outer.ts
        assert inner.end <= outer.end

    def test_span_survives_exception(self):
        tracer = Tracer(clock=wall_clock_us)
        try:
            with tracer.span("risky"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert [sp.name for sp in tracer.spans] == ["risky"]
        assert tracer.depth == 0

    def test_span_args_recorded(self):
        tracer = Tracer(clock=lambda: 0.0)
        with tracer.span("s", cat="c", tid=3, rank=5):
            pass
        sp = tracer.spans[0]
        assert sp.args == {"rank": 5}
        assert sp.tid == 3

    def test_thread_local_stacks(self):
        tracer = Tracer(clock=lambda: 0.0)
        depths = []

        def worker():
            with tracer.span("w"):
                depths.append(tracer.depth)

        with tracer.span("main"):
            th = threading.Thread(target=worker)
            th.start()
            th.join()
            # The worker's span must not count toward this thread's depth.
            assert tracer.depth == 1
        assert depths == [1]
        assert len(tracer.spans) == 2


class TestRetroactiveSpans:
    def test_complete_records_verbatim(self):
        tracer = Tracer()
        sp = tracer.complete("phase", ts=100.0, dur=25.0, cat="phase",
                             pid=PID_SIM, tid=TID_ALGO, args={"k": 1})
        assert isinstance(sp, Span)
        assert tracer.spans == [sp]
        assert (sp.ts, sp.dur, sp.end) == (100.0, 25.0, 125.0)

    def test_negative_duration_clamped(self):
        tracer = Tracer()
        sp = tracer.complete("x", ts=5.0, dur=-1.0)
        assert sp.dur == 0.0

    def test_instant_marker(self):
        tracer = Tracer(clock=lambda: 42.0)
        sp = tracer.instant("mark")
        assert (sp.ts, sp.dur) == (42.0, 0.0)

    def test_naming(self):
        tracer = Tracer()
        tracer.name_process(0, "sim")
        tracer.name_thread(1, "phases", pid=0)
        assert tracer.pid_names[0] == "sim"
        assert tracer.tid_names[(0, 1)] == "phases"


class TestNullTracer:
    def test_disabled_flag(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is True

    def test_span_is_shared_noop_context(self):
        ctx1 = NULL_TRACER.span("a")
        ctx2 = NULL_TRACER.span("b", cat="c", tid=3, rank=1)
        assert ctx1 is ctx2
        with ctx1:
            pass
        assert NULL_TRACER.spans == ()

    def test_all_methods_are_noops(self):
        nt = NullTracer()
        assert nt.complete("x", ts=0, dur=1) is None
        assert nt.instant("x") is None
        nt.name_process(0, "p")
        nt.name_thread(0, "t")
        assert nt.pid_names == {}
        assert nt.tid_names == {}
        assert nt.depth == 0

    def test_null_metrics_attached(self):
        NULL_TRACER.metrics.inc("anything", 5)
        assert NULL_TRACER.metrics.value("anything") == 0
