"""Executor tiers: resolution policy, shm transport, cross-tier parity.

Three layers of guarantees:

* **Policy** — :func:`repro.parallel.resolve_executor` honors explicit
  requests, the ``REPRO_EXECUTOR``/``REPRO_JOBS`` environment, and the
  can't-win degrade guard for *every* tier (which is what keeps ``--fast``
  runs working unchanged on 1-CPU hosts); the ``auto`` policy switches
  tiers at the measured pickling break-even.
* **Transport** — :mod:`repro.shm` pack/unpack round-trips arbitrary
  task/result containers exactly, with copy-out semantics (reads survive
  the arena being closed and unlinked) and no ``/dev/shm`` residue.
* **Parity** — serial, process, thread, and shm campaigns produce
  byte-identical JSONL reports and identical observability counter sums
  on all three kernel backends (hypothesis over scenario count, seed,
  jobs, and fault classes).  The serial loop is the reference; the other
  tiers must reproduce it bit-for-bit, which is exactly what lets the
  benchmark pick tiers on speed alone.

The 1-CPU auto-serial guard is monkeypatched away (as in
``tests/chaos/test_cancellation.py``) so the real pools run even on a
1-core host.
"""

from __future__ import annotations

import glob
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

import repro.parallel as parallel
import repro.shm as shm
from repro.chaos.campaign import run_campaign
from repro.parallel import (
    PICKLE_BREAK_EVEN_BYTES,
    jobs_from_env,
    resolve_executor,
    resolve_jobs,
    run_tasks,
    shutdown_pool,
)

BIG = PICKLE_BREAK_EVEN_BYTES * 4


def _no_segments() -> bool:
    return not glob.glob("/dev/shm/repro_shm_*")


@pytest.fixture(autouse=True)
def force_parallel_path(monkeypatch):
    """Defeat the 1-CPU auto-serial guard; leave no pools or arenas."""
    monkeypatch.setattr(parallel, "effective_cpu_count", lambda: 4)
    yield
    shutdown_pool()
    assert parallel._pool is None
    assert parallel._thread_pool is None
    assert _no_segments()


class TestResolveJobs:
    def test_auto_and_zero_mean_all_usable_cpus(self):
        assert resolve_jobs("auto") == parallel.effective_cpu_count()
        assert resolve_jobs("0") == parallel.effective_cpu_count()
        assert resolve_jobs(0) == parallel.effective_cpu_count()
        assert resolve_jobs(None) == parallel.effective_cpu_count()

    def test_numeric_strings_and_ints_agree(self):
        assert resolve_jobs("3") == 3
        assert resolve_jobs(3) == 3

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_jobs("many")
        with pytest.raises(ValueError):
            resolve_jobs(-2)

    def test_env_fallback(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert jobs_from_env(1) == 1
        monkeypatch.setenv("REPRO_JOBS", "auto")
        assert jobs_from_env(1) == parallel.effective_cpu_count()
        monkeypatch.setenv("REPRO_JOBS", "2")
        assert jobs_from_env(1) == 2


class TestShardSlice:
    """`auto` jobs divide the machine by the exported shard count."""

    def test_absent_or_malformed_means_standalone(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARD_COUNT", raising=False)
        assert parallel.shard_slice() == 1
        for bad in ("", "two", "1.5", "-3", "0"):
            monkeypatch.setenv("REPRO_SHARD_COUNT", bad)
            assert parallel.shard_slice() == 1

    def test_exported_count_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_COUNT", "4")
        assert parallel.shard_slice() == 4

    def test_auto_jobs_divide_by_the_slice(self, monkeypatch):
        # effective_cpu_count is patched to 4 by the autouse fixture.
        monkeypatch.setenv("REPRO_SHARD_COUNT", "2")
        assert resolve_jobs("auto") == 2
        monkeypatch.setenv("REPRO_SHARD_COUNT", "4")
        assert resolve_jobs("auto") == 1
        # More shards than CPUs still leaves every shard one worker.
        monkeypatch.setenv("REPRO_SHARD_COUNT", "16")
        assert resolve_jobs("auto") == 1
        # Explicit worker counts are never divided: the operator said so.
        assert resolve_jobs("3") == 3


class TestResolveExecutor:
    def test_explicit_requests_honored_when_winnable(self):
        for tier in ("process", "thread", "shm"):
            assert resolve_executor(tier, jobs=4, total=100) == tier

    def test_degrade_guard_applies_to_every_tier(self, monkeypatch):
        # Too few tasks for the worker count.
        for tier in ("process", "thread", "shm", "auto", None):
            assert resolve_executor(tier, jobs=4, total=3) == "serial"
        # One usable CPU: nothing parallel can win.
        monkeypatch.setattr(parallel, "effective_cpu_count", lambda: 1)
        assert resolve_executor("thread", jobs=4, total=100) == "serial"

    def test_auto_policy_switches_at_the_break_even(self):
        small, big = PICKLE_BREAK_EVEN_BYTES // 2, PICKLE_BREAK_EVEN_BYTES
        assert resolve_executor(
            "auto", jobs=4, total=100, payload_hint=small, kernels="numpy"
        ) == "process"
        assert resolve_executor(
            "auto", jobs=4, total=100, payload_hint=big, kernels="numpy"
        ) == "thread"
        assert resolve_executor(
            "auto", jobs=4, total=100, payload_hint=big, kernels="compiled"
        ) == "thread"
        # The GIL-holding loop backend cannot use threads; big payloads
        # take the arena route instead.
        assert resolve_executor(
            "auto", jobs=4, total=100, payload_hint=big, kernels="loop"
        ) == "shm"

    def test_env_consulted_when_unspecified(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXECUTOR", "thread")
        assert resolve_executor(None, jobs=4, total=100) == "thread"
        monkeypatch.delenv("REPRO_EXECUTOR")
        assert resolve_executor(
            None, jobs=4, total=100, payload_hint=0, kernels="numpy"
        ) == "process"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            resolve_executor("gpu", jobs=4, total=100)


class TestShmTransport:
    def test_roundtrip_preserves_structure_and_values(self):
        rng = np.random.default_rng(3)
        arr = rng.random(9000)
        obj = (7, {"keys": arr, "tag": "x" * 5000, "small": b"ab"},
               [arr[:5], None, 1.5])
        size = shm.collect_leaf_bytes(obj)
        assert size > 0
        arena = shm.Arena.create("test", size)
        packed = shm.pack(obj, arena)
        arena.close()
        cache = shm._AttachCache()
        out = shm.unpack(packed, cache)
        cache.close(unlink=True)
        assert out[0] == 7
        assert np.array_equal(out[1]["keys"], arr)
        assert out[1]["tag"] == "x" * 5000
        assert out[1]["small"] == b"ab"      # below the leaf threshold: inline
        assert np.array_equal(out[2][0], arr[:5])
        assert out[2][1] is None and out[2][2] == 1.5
        assert _no_segments()

    def test_reads_are_copies(self):
        arr = np.arange(8000, dtype=float)
        arena = shm.Arena.create("copy", shm.collect_leaf_bytes(arr))
        ref = shm.pack(arr, arena)
        arena.close()
        cache = shm._AttachCache()
        out = shm.unpack(ref, cache)
        cache.close(unlink=True)   # segment gone...
        assert np.array_equal(out, arr)  # ...copy still readable
        out[0] = -1.0                     # and writable
        assert _no_segments()

    def test_small_payloads_stay_inline(self):
        tagged = shm.pack_results([{"tiny": 1}], shm.make_name("res"))
        assert tagged[0] == "inline"
        assert _no_segments()

    def test_pack_results_roundtrip_unlinks(self):
        results = [{"keys": np.arange(6000, dtype=float)} for _ in range(3)]
        name = shm.make_name("res")
        shm.register_name(name)
        tagged = shm.pack_results(results, name)
        assert tagged[0] == "shm"
        out, moved = shm.unpack_results(tagged)
        shm.deregister_name(name)
        assert moved == 3 * 6000 * 8
        for got, want in zip(out, results):
            assert np.array_equal(got["keys"], want["keys"])
        assert _no_segments()

    def test_sweep_ignores_absent_and_removes_present(self):
        arena = shm.Arena.create("sweep", 4096)
        assert shm.sweep([arena.name, "repro_shm_never_created"]) == 1
        arena.close()
        assert _no_segments()
        assert shm.registered_names() == ()


def _sorted_sum(task):
    idx, arr = task
    return (idx, float(np.sort(arr).sum()), arr[: 8].copy())


class TestRunTasksParity:
    def test_all_tiers_match_serial(self):
        rng = np.random.default_rng(11)
        tasks = [(i, rng.random(BIG // 8)) for i in range(12)]
        ref = run_tasks(_sorted_sum, tasks, jobs=1, executor="serial")
        for tier in ("process", "thread", "shm"):
            got = run_tasks(_sorted_sum, tasks, jobs=3, executor=tier)
            assert parallel.last_run_stats()["executor"] == tier
            for (ri, rs, ra), (gi, gs, ga) in zip(ref, got):
                assert (ri, rs) == (gi, gs)
                assert np.array_equal(ra, ga)

    def test_stats_account_for_the_transport(self):
        rng = np.random.default_rng(12)
        tasks = [(i, rng.random(BIG // 8)) for i in range(8)]
        run_tasks(_sorted_sum, tasks, jobs=2, executor="process")
        by_pickle = parallel.last_run_stats()
        run_tasks(_sorted_sum, tasks, jobs=2, executor="thread")
        by_thread = parallel.last_run_stats()
        run_tasks(_sorted_sum, tasks, jobs=2, executor="shm")
        by_arena = parallel.last_run_stats()
        assert by_pickle["pickled_bytes"] == by_pickle["payload_bytes"] > 0
        assert by_thread["pickled_bytes"] == 0
        assert by_arena["arena_bytes"] > 0
        assert by_arena["pickled_bytes"] < by_pickle["pickled_bytes"]

    def test_progress_fires_for_every_task(self):
        rng = np.random.default_rng(13)
        tasks = [(i, rng.random(BIG // 8)) for i in range(8)]
        seen = []
        run_tasks(_sorted_sum, tasks, jobs=2, executor="shm",
                  progress=lambda done, total, r: seen.append((done, total)))
        assert [d for d, _ in seen] == list(range(1, 9))
        assert all(t == 8 for _, t in seen)


def _campaign_lines(tmp_path, tag, **kw) -> tuple[str, dict]:
    out = tmp_path / f"{tag}.jsonl"
    summary = run_campaign(out=str(out), shrink_failures=False, **kw)
    return out.read_text(), summary.to_dict()


class TestCampaignParity:
    """Serial vs process vs thread vs shm: byte-identical campaigns."""

    @pytest.mark.parametrize("backend", ("numpy", "loop", "compiled"))
    @given(
        count=st.integers(min_value=4, max_value=8),
        seed=st.integers(min_value=0, max_value=2**16),
        jobs=st.integers(min_value=2, max_value=4),
        classes=st.sampled_from(
            [("baseline",), ("comparison", "memory"), ("baseline", "abft")]
        ),
    )
    @settings(max_examples=3, deadline=None)
    def test_all_tiers_byte_identical(self, backend, tmp_path_factory,
                                      count, seed, jobs, classes):
        tmp_path = tmp_path_factory.mktemp("parity")
        # Workers inherit REPRO_KERNELS at fork time: recycle the pools
        # whenever the backend changes so every tier sees the same one.
        previous = os.environ.get("REPRO_KERNELS")
        os.environ["REPRO_KERNELS"] = backend
        shutdown_pool()
        try:
            kw = dict(count=count, seed=seed, backends=("phase",),
                      fault_classes=classes, jobs=jobs)
            ref_text, ref_summary = _campaign_lines(
                tmp_path, "serial", executor="serial", **kw)
            for tier in ("process", "thread", "shm"):
                text, summary = _campaign_lines(
                    tmp_path, tier, executor=tier, **kw)
                assert text == ref_text, f"{tier} diverged from serial"
                assert summary == ref_summary
            # Obs counter sums survive the executor change: re-derive from
            # the report lines (the last line is the summary) and
            # cross-check against the aggregated summary.
            lines = [json.loads(l) for l in ref_text.splitlines()][:-1]
            assert sum(l["retries"] for l in lines) == ref_summary["retries"]
            assert (sum(l["recoveries"] for l in lines)
                    == ref_summary["recoveries"])
        finally:
            shutdown_pool()
            if previous is None:
                os.environ.pop("REPRO_KERNELS", None)
            else:
                os.environ["REPRO_KERNELS"] = previous
