"""Unit tests for the :class:`repro.plancache.PlanCache` mechanics."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry
from repro.plancache import PlanCache
from repro.plancache.cache import _env_enabled


class TestMemo:
    def test_miss_then_hit(self):
        cache = PlanCache()
        calls = []
        assert cache.memo("plan", ("k",), lambda: calls.append(1) or 41) == 41
        assert cache.memo("plan", ("k",), lambda: calls.append(1) or 42) == 41
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"]["plan"] == 1
        assert stats["misses"]["plan"] == 1

    def test_disabled_is_transparent_and_uncounted(self):
        cache = PlanCache(enabled=False)
        assert cache.memo("plan", ("k",), lambda: 1) == 1
        assert cache.memo("plan", ("k",), lambda: 2) == 2  # recomputed
        stats = cache.stats()
        assert stats["total_hits"] == 0 and stats["total_misses"] == 0
        assert cache.size == 0

    def test_lru_eviction_at_capacity(self):
        cache = PlanCache(capacity=2)
        cache.memo("plan", (1,), lambda: "a")
        cache.memo("plan", (2,), lambda: "b")
        cache.memo("plan", (1,), lambda: "x")  # refresh 1; 2 is now LRU
        cache.memo("plan", (3,), lambda: "c")  # evicts 2
        assert cache.stats()["evictions"] == 1
        assert cache.memo("plan", (1,), lambda: "y") == "a"
        assert cache.memo("plan", (2,), lambda: "b2") == "b2"  # was evicted

    def test_configure_shrink_evicts(self):
        cache = PlanCache(capacity=8)
        for i in range(8):
            cache.memo("plan", (i,), lambda: i)
        cache.configure(capacity=3)
        assert cache.size == 3

    def test_clear(self):
        cache = PlanCache()
        cache.memo("plan", (1,), lambda: 1)
        cache.clear(reset_counters=True)
        assert cache.size == 0
        assert cache.stats()["total_misses"] == 0


class TestMetricsExport:
    def test_export_and_baseline_delta(self):
        cache = PlanCache()
        cache.memo("routes", (1,), lambda: 1)
        baseline = cache.stats()
        cache.memo("routes", (1,), lambda: 1)  # 1 hit after baseline
        cache.memo("routes", (2,), lambda: 2)  # 1 miss after baseline

        registry = MetricsRegistry()
        cache.export_metrics(registry, baseline=baseline)
        snapshot = registry.to_dict()
        counters = snapshot["counters"]
        assert counters["plancache.hits"] == 1
        assert counters["plancache.misses"] == 1
        assert counters["plancache.hits.routes"] == 1
        assert snapshot["gauges"]["plancache.entries"] == 2

    def test_summary_mentions_every_section(self):
        cache = PlanCache()
        text = cache.summary()
        for section in ("plan", "canon", "sched", "routes", "nominal"):
            assert section in text


class TestEnvGate:
    def test_env_enabled_parsing(self, monkeypatch):
        for value, expected in [("off", False), ("0", False), ("no", False),
                                ("on", True), ("1", True), (None, True)]:
            if value is None:
                monkeypatch.delenv("REPRO_PLAN_CACHE", raising=False)
            else:
                monkeypatch.setenv("REPRO_PLAN_CACHE", value)
            assert _env_enabled() is expected
