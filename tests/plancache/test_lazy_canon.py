"""Lazy canonicalization: pay the Aut(Q_n) search only when an orbit recurs.

The protocol under test (see ``plan_with_cache``):

1. an exact fault set seen before  -> exact-key hit, no planning at all;
2. first sighting of an orbit signature -> plan directly (cache-off cost),
   **no canonicalization**;
3. a recurring signature -> canonicalize, compute/replay the canonical
   orbit plan.

Whatever the path, the resulting plan must be byte-identical to a cold
``find_min_cuts`` + ``select_cut_sequence`` run.
"""

from __future__ import annotations

import pytest

from repro.core.partition import find_min_cuts
from repro.core.selection import select_cut_sequence
from repro.plancache import PLAN_CACHE, orbit_signature, plan_with_cache

N = 5
FAULTS = (3, 12, 21)  # r = 3 on Q_5: a real partition problem


@pytest.fixture(autouse=True)
def fresh_cache():
    PLAN_CACHE.configure(enabled=True)
    PLAN_CACHE.clear(reset_counters=True)
    yield
    PLAN_CACHE.configure(enabled=True)
    PLAN_CACHE.clear(reset_counters=True)


def _xor_image(procs, t):
    """The automorphic image of a fault set under the translation x -> x^t."""
    return tuple(sorted(p ^ t for p in procs))


def _perm_image(procs, perm):
    """The image under a dimension permutation (bit i of x -> bit perm[i])."""
    return tuple(sorted(
        sum(((p >> i) & 1) << perm[i] for i in range(N)) for p in procs))


def _cold_plan(n, procs):
    partition = find_min_cuts(n, procs)
    return partition, select_cut_sequence(partition)


class TestLazyProtocol:
    def test_first_sighting_does_not_canonicalize(self):
        plan_with_cache(N, FAULTS)
        stats = PLAN_CACHE.stats()
        assert stats["canonicalizations"] == 0
        assert stats["signatures"] == 1

    def test_exact_repeat_hits_without_canonicalizing(self):
        plan_with_cache(N, FAULTS)
        before = PLAN_CACHE.stats()["hits"]["plan"]
        plan_with_cache(N, FAULTS)
        stats = PLAN_CACHE.stats()
        assert stats["hits"]["plan"] == before + 1
        assert stats["canonicalizations"] == 0

    def test_second_orbit_member_triggers_canonicalization(self):
        plan_with_cache(N, FAULTS)
        image = _xor_image(FAULTS, 9)
        assert image != FAULTS
        assert orbit_signature(N, image) == orbit_signature(N, FAULTS)
        plan_with_cache(N, image)
        stats = PLAN_CACHE.stats()
        assert stats["canonicalizations"] == 1
        assert stats["signatures"] == 1  # same signature, seen twice

    def test_third_orbit_member_replays_from_the_orbit_entry(self):
        plan_with_cache(N, FAULTS)
        plan_with_cache(N, _xor_image(FAULTS, 9))  # pays the orbit compute
        hits_before = PLAN_CACHE.stats()["hits"]["plan"]
        plan_with_cache(N, _perm_image(FAULTS, (1, 0, 2, 4, 3)))
        stats = PLAN_CACHE.stats()
        # Canonicalizing the new member, then hitting the shared orbit plan.
        assert stats["canonicalizations"] == 2
        assert stats["hits"]["plan"] == hits_before + 1

    def test_every_path_matches_the_cold_plan(self):
        members = [
            FAULTS,                                   # direct (first sighting)
            _xor_image(FAULTS, 9),                    # orbit compute
            _perm_image(FAULTS, (1, 0, 2, 4, 3)),     # orbit replay
            FAULTS,                                   # exact hit
        ]
        for procs in members:
            partition, selection = plan_with_cache(N, procs)
            cold_part, cold_sel = _cold_plan(N, procs)
            assert partition.mincut == cold_part.mincut
            assert partition.cutting_set == cold_part.cutting_set
            assert selection.cut_dims == cold_sel.cut_dims
            assert selection.cost == cold_sel.cost
            assert selection.dangling_w == cold_sel.dangling_w
            assert selection.dead_of_subcube == cold_sel.dead_of_subcube

    def test_disabled_cache_never_tracks_signatures(self):
        PLAN_CACHE.configure(enabled=False)
        plan_with_cache(N, FAULTS)
        plan_with_cache(N, _xor_image(FAULTS, 9))
        stats = PLAN_CACHE.stats()
        assert stats["signatures"] == 0
        assert stats["canonicalizations"] == 0
        assert stats["total_hits"] == 0 and stats["total_misses"] == 0


class TestOrbitSignature:
    def test_invariant_under_automorphisms(self):
        sig = orbit_signature(N, FAULTS)
        for t in (1, 9, 30):
            assert orbit_signature(N, _xor_image(FAULTS, t)) == sig
        for perm in ((4, 3, 2, 1, 0), (2, 0, 1, 4, 3)):
            assert orbit_signature(N, _perm_image(FAULTS, perm)) == sig

    def test_separates_easy_cases(self):
        # Different fault counts and visibly different distance profiles.
        assert orbit_signature(N, (3,)) != orbit_signature(N, (3, 12))
        assert orbit_signature(N, (0, 1, 2)) != orbit_signature(N, (0, 1, 31))

    def test_signature_table_is_capacity_bounded(self):
        from repro.plancache import PlanCache

        cache = PlanCache(capacity=2)
        for sig in ("s1", "s2", "s3"):
            cache.note_signature(sig)
        assert cache.stats()["signatures"] <= 2
        # The survivor still counts sightings.
        assert cache.note_signature("s3") == 2
