"""Orbit-entry gossip: export/import of canonical plans between caches.

The gossip tier ships ``("orbit", n, canon) -> (mincut, psi, costs)``
entries between shard-local caches as plain JSON.  The contract:

* every logged entry survives a ``json.dumps``/``loads`` round trip with
  exact integer equality;
* an imported entry is *reachable* under lazy canonicalization — the
  first local sighting of an equivalent fault set canonicalizes and hits
  it (the import pre-seeds the signature count past the lazy threshold);
* imports are idempotent and never clobber resident entries;
* imported entries re-enter the log, so gossip is transitive (A -> router
  -> B -> B's pool workers).
"""

from __future__ import annotations

import json

import pytest

from repro.core.partition import find_min_cuts
from repro.core.selection import select_cut_sequence
from repro.plancache import PLAN_CACHE, orbit_signature, plan_with_cache
from repro.plancache.cache import ORBIT_LOG_MAX

N = 5
FAULTS = (3, 12, 21)


@pytest.fixture(autouse=True)
def fresh_cache():
    PLAN_CACHE.configure(enabled=True)
    PLAN_CACHE.clear(reset_counters=True)
    yield
    PLAN_CACHE.configure(enabled=True)
    PLAN_CACHE.clear(reset_counters=True)


def _entries_after_canonical_plan():
    """Plan the same orbit twice so the canonical entry is computed+logged."""
    plan_with_cache(N, FAULTS)
    plan_with_cache(N, tuple(sorted(f ^ 9 for f in FAULTS)))  # same orbit
    entries, cursor = PLAN_CACHE.export_orbit_entries(0)
    return entries, cursor


class TestExportImportRoundTrip:
    def test_canonical_plan_is_logged_and_json_safe(self):
        entries, cursor = _entries_after_canonical_plan()
        assert len(entries) == 1 and cursor == 1
        wire = json.loads(json.dumps(entries))
        assert wire == entries  # ints and lists of ints only
        entry = wire[0]
        assert set(entry) == {"n", "canon", "mincut", "psi", "costs"}
        assert entry["n"] == N
        assert len(entry["psi"]) == len(entry["costs"])

    def test_cursor_is_incremental(self):
        entries, cursor = _entries_after_canonical_plan()
        again, cursor2 = PLAN_CACHE.export_orbit_entries(cursor)
        assert again == [] and cursor2 == cursor

    def test_import_into_cold_cache_hits_on_first_local_sighting(self):
        entries, _ = _entries_after_canonical_plan()
        PLAN_CACHE.clear(reset_counters=True)
        assert PLAN_CACHE.import_orbit_entries(entries) == 1
        before = PLAN_CACHE.stats()
        # First sighting of the orbit locally: without the import this
        # would plan directly (lazy protocol); with it, the pre-seeded
        # signature count forces canonicalization straight into the
        # imported entry.
        partition, selection = plan_with_cache(N, FAULTS)
        after = PLAN_CACHE.stats()
        assert after["total_hits"] > before["total_hits"]
        cold_part = find_min_cuts(N, FAULTS)
        cold_sel = select_cut_sequence(cold_part)
        assert partition.mincut == cold_part.mincut
        assert selection.cut_dims == cold_sel.cut_dims
        assert selection.cost == cold_sel.cost

    def test_import_is_idempotent_and_preserves_residents(self):
        entries, _ = _entries_after_canonical_plan()
        stats = PLAN_CACHE.stats()
        assert PLAN_CACHE.import_orbit_entries(entries) == 0  # resident
        assert PLAN_CACHE.stats()["entries"] == stats["entries"]
        PLAN_CACHE.clear(reset_counters=True)
        assert PLAN_CACHE.import_orbit_entries(entries) == 1
        assert PLAN_CACHE.import_orbit_entries(entries) == 0

    def test_imported_entries_are_relogged_for_transitive_gossip(self):
        entries, _ = _entries_after_canonical_plan()
        PLAN_CACHE.clear(reset_counters=True)
        PLAN_CACHE.import_orbit_entries(entries)
        relogged, _cursor = PLAN_CACHE.export_orbit_entries(0)
        assert relogged == entries

    def test_malformed_entries_are_skipped_not_fatal(self):
        entries, _ = _entries_after_canonical_plan()
        PLAN_CACHE.clear(reset_counters=True)
        garbage = [None, {}, {"n": "five", "canon": []},
                   {"n": 5, "canon": [1, 2], "mincut": "x",
                    "psi": [], "costs": []}]
        assert PLAN_CACHE.import_orbit_entries(garbage + entries) == 1

    def test_disabled_cache_imports_nothing(self):
        entries, _ = _entries_after_canonical_plan()
        PLAN_CACHE.configure(enabled=False)
        PLAN_CACHE.clear(reset_counters=True)
        assert PLAN_CACHE.import_orbit_entries(entries) == 0


class TestLogBounds:
    def test_log_is_bounded_and_cursor_survives_drops(self):
        for i in range(ORBIT_LOG_MAX + 10):
            PLAN_CACHE.record_orbit_entry(5, (i,), 1, ((0,),), (0,))
        entries, cursor = PLAN_CACHE.export_orbit_entries(0)
        assert len(entries) == ORBIT_LOG_MAX
        assert cursor == ORBIT_LOG_MAX + 10
        # A cursor taken before the drop still yields only what remains.
        tail, cursor2 = PLAN_CACHE.export_orbit_entries(5)
        assert len(tail) == ORBIT_LOG_MAX
        assert cursor2 == cursor

    def test_stats_expose_log_length(self):
        _entries_after_canonical_plan()
        assert PLAN_CACHE.stats()["orbit_log"] == 1
