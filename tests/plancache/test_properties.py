"""Property-based tests for the plan cache (hypothesis).

Two invariants carry the whole tentpole:

* **Canonical-form invariance** — ``canonical_form`` must be constant on
  automorphism orbits: applying any hypercube automorphism (an XOR
  translation composed with a dimension permutation) to a fault set must
  not change its canonical form.  This is what makes the cache key sound.
* **Replay fidelity** — a plan served *through* the cache (including the
  hit path, where the stored canonical plan was computed for a different
  member of the orbit) must equal a cold ``find_min_cuts`` +
  ``select_cut_sequence`` run exactly: same mincut, same Ψ (order
  included), same selection, and — end to end — the same sorted bytes and
  simulated cost on both kernel backends.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.ftsort import fault_tolerant_sort
from repro.faults.model import FaultSet
from repro.core.partition import find_min_cuts
from repro.core.selection import select_cut_sequence
from repro.cube.address import permute_bits
from repro.plancache import PLAN_CACHE, canonical_form, plan_with_cache


@st.composite
def _orbit_case(draw):
    """A fault set plus a random automorphism of its cube."""
    n = draw(st.integers(min_value=3, max_value=6))
    r = draw(st.integers(min_value=2, max_value=min(4, n)))
    procs = tuple(sorted(draw(
        st.lists(st.integers(min_value=0, max_value=(1 << n) - 1),
                 min_size=r, max_size=r, unique=True)
    )))
    translate = draw(st.integers(min_value=0, max_value=(1 << n) - 1))
    perm = tuple(draw(st.permutations(tuple(range(n)))))
    return n, procs, translate, perm


def _image(n: int, procs, translate: int, perm) -> tuple[int, ...]:
    return tuple(sorted(permute_bits(p ^ translate, perm) for p in procs))


class TestCanonicalInvariance:
    @given(_orbit_case())
    @settings(max_examples=120, deadline=None)
    def test_canonical_form_constant_on_orbit(self, case):
        n, procs, translate, perm = case
        form, _ = canonical_form(n, procs)
        form_img, _ = canonical_form(n, _image(n, procs, translate, perm))
        assert form == form_img, (
            f"n={n} procs={procs} ^{translate} perm={perm}: "
            f"{form} != {form_img}"
        )

    @given(_orbit_case())
    @settings(max_examples=60, deadline=None)
    def test_transform_maps_faults_onto_canonical_form(self, case):
        n, procs, _, _ = case
        form, tf = canonical_form(n, procs)
        assert tuple(sorted(tf.apply(p) for p in procs)) == form
        assert tuple(sorted(tf.invert(c) for c in form)) == procs


class TestReplayFidelity:
    @given(_orbit_case())
    @settings(max_examples=80, deadline=None)
    def test_cached_plan_equals_cold_plan(self, case):
        n, procs, translate, perm = case
        cold_part = find_min_cuts(n, procs)
        cold_sel = select_cut_sequence(cold_part)

        PLAN_CACHE.configure(enabled=True)
        PLAN_CACHE.clear(reset_counters=True)
        # Warm the canonical entry with a *different* orbit member, so the
        # query below exercises the hit/replay path, not just a pass-through.
        plan_with_cache(n, _image(n, procs, translate, perm))
        part, sel = plan_with_cache(n, procs)

        assert part == cold_part
        assert sel == cold_sel

    @given(_orbit_case())
    @settings(max_examples=12, deadline=None)
    def test_sorted_output_identical_on_both_kernels(self, case):
        n, procs, translate, perm = case
        # The planner handles any fault set, but the end-to-end sort
        # enforces the paper's model (r <= n-1, nobody fully surrounded).
        assume(FaultSet(n, procs).satisfies_paper_model())
        keys = np.random.default_rng(hash(case) & 0xFFFF).random(3 << n)
        for kernels in ("numpy", "loop"):
            PLAN_CACHE.configure(enabled=False)
            PLAN_CACHE.clear(reset_counters=True)
            cold = fault_tolerant_sort(keys, n, list(procs), kernels=kernels)
            PLAN_CACHE.configure(enabled=True)
            PLAN_CACHE.clear(reset_counters=True)
            plan_with_cache(n, _image(n, procs, translate, perm))
            warm = fault_tolerant_sort(keys, n, list(procs), kernels=kernels)
            assert warm.sorted_keys.tobytes() == cold.sorted_keys.tobytes()
            assert warm.elapsed == cold.elapsed
            assert warm.output_order == cold.output_order


@pytest.fixture(autouse=True)
def _restore_cache():
    yield
    PLAN_CACHE.configure(enabled=True)
    PLAN_CACHE.clear(reset_counters=True)
