"""Wire protocol: JobSpec validation is the admission boundary."""

import pytest

from repro.service.protocol import (
    JobSpec,
    ProtocolError,
    batch_signature,
    decode_line,
    encode,
)


class TestJobSpecValidation:
    def test_minimal_sort(self):
        spec = JobSpec.from_dict({"kind": "sort"})
        assert spec.kind == "sort"
        assert spec.n == 5
        assert spec.faults == ()
        assert spec.backend == "phase"

    def test_full_round_trip(self):
        spec = JobSpec.from_dict({
            "kind": "sort", "n": 6, "faults": [3, 5, 16], "keys": 4096,
            "seed": 7, "kernels": "loop", "backend": "spmd",
        })
        assert JobSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize("raw", [
        None,
        [],
        "sort",
        {"kind": "mine-bitcoin"},
        {"kind": "sort", "surprise": 1},
        {"kind": "sort", "n": 0},
        {"kind": "sort", "n": 11},
        {"kind": "sort", "n": True},
        {"kind": "sort", "keys": 0},
        {"kind": "sort", "keys": 1 << 21},
        {"kind": "sort", "seed": -1},
        {"kind": "sort", "backend": "quantum"},
        {"kind": "sort", "kernels": "cuda"},
        {"kind": "sort", "faults": 3},
        {"kind": "sort", "faults": ["3"]},
        {"kind": "sort", "faults": [99], "n": 5},
        {"kind": "sort", "faults": [-1]},
        {"kind": "sort", "faults": [3, 3]},
        # r <= n - 1: five faults on Q_5 is one too many.
        {"kind": "sort", "n": 5, "faults": [0, 1, 2, 4, 8]},
        {"kind": "plan", "n": 3, "faults": [0, 1, 2]},
    ])
    def test_rejects(self, raw):
        with pytest.raises(ProtocolError):
            JobSpec.from_dict(raw)

    def test_chaos_ignores_fault_budget(self):
        # The r <= n-1 budget is a sort/plan constraint; chaos scenarios
        # derive their own faults from (index, seed).
        spec = JobSpec.from_dict({"kind": "chaos", "index": 3, "seed": 9})
        assert spec.index == 3

    def test_chaos_fault_class_round_trip(self):
        spec = JobSpec.from_dict({
            "kind": "chaos", "index": 2, "fault_class": "comparison",
            "fault_params": {"p": 0.002},
        })
        assert spec.fault_class == "comparison"
        assert spec.fault_params == (("p", 0.002),)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_fault_class_defaults_to_baseline(self):
        spec = JobSpec.from_dict({"kind": "chaos"})
        assert spec.fault_class == "baseline"
        assert spec.fault_params == ()

    @pytest.mark.parametrize("raw", [
        # Unknown class names are rejected at admission, not at run time.
        {"kind": "chaos", "fault_class": "gremlins"},
        {"kind": "chaos", "fault_class": 7},
        # Fault universes are a chaos-only concept.
        {"kind": "sort", "fault_class": "comparison"},
        {"kind": "plan", "fault_params": {"p": 0.1}},
        # Severity parameters are probabilities/fractions.
        {"kind": "chaos", "fault_class": "comparison", "fault_params": {"p": 1.5}},
        {"kind": "chaos", "fault_class": "comparison", "fault_params": {"p": -0.1}},
        {"kind": "chaos", "fault_class": "comparison", "fault_params": {"p": "hi"}},
        {"kind": "chaos", "fault_class": "comparison", "fault_params": {"p": True}},
        {"kind": "chaos", "fault_class": "comparison", "fault_params": [0.1]},
    ])
    def test_fault_class_rejects(self, raw):
        with pytest.raises(ProtocolError):
            JobSpec.from_dict(raw)


class TestBatchSignature:
    def test_sorts_batch_on_planning_problem_not_payload(self):
        a = JobSpec.from_dict({"kind": "sort", "n": 5, "faults": [3, 5],
                               "keys": 256, "seed": 1})
        b = JobSpec.from_dict({"kind": "sort", "n": 5, "faults": [3, 5],
                               "keys": 8192, "seed": 2})
        assert batch_signature(a) == batch_signature(b)

    @pytest.mark.parametrize("other", [
        {"kind": "sort", "n": 6, "faults": [3, 5]},
        {"kind": "sort", "n": 5, "faults": [3, 6]},
        {"kind": "sort", "n": 5, "faults": [3, 5], "backend": "spmd"},
        {"kind": "sort", "n": 5, "faults": [3, 5], "kernels": "loop"},
        {"kind": "plan", "n": 5, "faults": [3, 5]},
    ])
    def test_different_problems_do_not_batch(self, other):
        base = JobSpec.from_dict({"kind": "sort", "n": 5, "faults": [3, 5]})
        assert batch_signature(base) != batch_signature(JobSpec.from_dict(other))

    def test_chaos_never_batches(self):
        spec = JobSpec.from_dict({"kind": "chaos", "index": 1})
        assert batch_signature(spec) is None


class TestFraming:
    def test_encode_decode_round_trip(self):
        msg = {"op": "submit", "tenant": "a", "job": {"kind": "plan", "n": 4}}
        data = encode(msg)
        assert data.endswith(b"\n")
        assert decode_line(data) == msg

    @pytest.mark.parametrize("line", [b"not json\n", b"[1, 2]\n", b"42\n"])
    def test_decode_rejects_non_objects(self, line):
        with pytest.raises(ProtocolError):
            decode_line(line)
