"""Admission bounds, round-robin fairness, and batch gathering."""

import pytest

from repro.service.protocol import JobSpec
from repro.service.queue import FairQueue, QueueFull, QueuedJob


def _job(tenant: str, i: int, *, kind: str = "sort", n: int = 5,
         faults=(3, 5)) -> QueuedJob:
    spec = JobSpec.from_dict(
        {"kind": kind, "n": n, "faults": list(faults), "seed": i}
        if kind != "chaos" else {"kind": kind, "index": i})
    return QueuedJob(job_id=f"{tenant}{i}", tenant=tenant, spec=spec)


class TestAdmission:
    def test_global_bound(self):
        q = FairQueue(max_queued=3, max_queued_per_tenant=3)
        for i in range(3):
            q.put(_job("a", i))
        with pytest.raises(QueueFull) as exc:
            q.put(_job("b", 0))
        assert exc.value.scope == "global"
        assert len(q) == 3

    def test_per_tenant_bound_protects_other_tenants(self):
        q = FairQueue(max_queued=100, max_queued_per_tenant=2)
        q.put(_job("hog", 0))
        q.put(_job("hog", 1))
        with pytest.raises(QueueFull) as exc:
            q.put(_job("hog", 2))
        assert exc.value.scope == "tenant"
        # The other tenant still has its share of the global bound.
        q.put(_job("polite", 0))
        assert q.tenant_depths() == {"hog": 2, "polite": 1}

    def test_depth_tracks_put_and_pop(self):
        q = FairQueue()
        for i in range(4):
            q.put(_job("a", i, kind="chaos"))
        q.pop_batch(1)
        assert len(q) == 3


class TestFairness:
    def test_round_robin_across_tenants_not_fifo(self):
        # Tenant "hog" enqueues 10 jobs before "late" enqueues 1; round-robin
        # serves "late" second, not eleventh.  Chaos jobs don't batch, so
        # each pop is a single job.
        q = FairQueue()
        for i in range(10):
            q.put(_job("hog", i, kind="chaos"))
        q.put(_job("late", 0, kind="chaos"))
        order = [q.pop_batch(1)[0].tenant for _ in range(3)]
        assert order == ["hog", "late", "hog"]

    def test_three_tenants_interleave(self):
        q = FairQueue()
        for t in ("a", "b", "c"):
            for i in range(2):
                q.put(_job(t, i, kind="chaos"))
        order = [q.pop_batch(1)[0].tenant for _ in range(6)]
        assert order == ["a", "b", "c", "a", "b", "c"]

    def test_within_tenant_is_fifo(self):
        q = FairQueue()
        for i in range(3):
            q.put(_job("a", i, kind="chaos"))
        ids = [q.pop_batch(1)[0].job_id for _ in range(3)]
        assert ids == ["a0", "a1", "a2"]

    def test_pop_empty(self):
        assert FairQueue().pop_batch(4) == []


class TestBatching:
    def test_gathers_compatible_jobs_across_tenants(self):
        q = FairQueue()
        q.put(_job("a", 0))            # same planning problem...
        q.put(_job("a", 1))
        q.put(_job("b", 0))            # ...from another tenant
        q.put(_job("b", 1, faults=(1, 2)))  # different problem: stays queued
        batch = q.pop_batch(8)
        assert sorted(j.job_id for j in batch) == ["a0", "a1", "b0"]
        assert len(q) == 1
        assert q.pop_batch(8)[0].job_id == "b1"

    def test_batch_max_caps_the_gather(self):
        q = FairQueue()
        for i in range(6):
            q.put(_job("a", i))
        batch = q.pop_batch(4)
        assert len(batch) == 4
        assert len(q) == 2

    def test_unbatchable_head_pops_alone(self):
        q = FairQueue()
        q.put(_job("a", 0, kind="chaos"))
        q.put(_job("a", 1, kind="chaos"))
        assert len(q.pop_batch(8)) == 1

    def test_batching_skips_non_matching_head(self):
        # The gather may take a matching job from *behind* a non-matching
        # head of another tenant's queue; the head stays put and in order.
        q = FairQueue()
        q.put(_job("a", 0))
        q.put(_job("b", 0, kind="chaos"))
        q.put(_job("b", 1))
        batch = q.pop_batch(8)
        assert sorted(j.job_id for j in batch) == ["a0", "b1"]
        assert q.pop_batch(8)[0].job_id == "b0"
