"""Per-tenant rate limiting and jittered client backoff.

Bucket math is tested on a synthetic clock (deterministic); the e2e tests
assert the server's ``rate_limited`` rejections carry bucket-derived
``retry_after_ms`` hints and that limits isolate tenants from each other.
"""

import asyncio
import random
import threading

import pytest

import repro.service.server as server_mod
from repro.service import ServiceClient, SortingService, TokenBucket
from repro.service.client import _retry_delay_s
from repro.service.jobs import run_job_batch


async def _start(svc: SortingService):
    server = await svc.start_tcp()
    return server, server.sockets[0].getsockname()[1]


async def _stop(svc, server, *clients):
    for c in clients:
        await c.close()
    server.close()
    await server.wait_closed()
    await svc.aclose()


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3, now=0.0)
        assert [bucket.try_take(now=0.0) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(now=0.0)  # empty: a token costs 1/rate
        assert wait == pytest.approx(0.1)
        assert bucket.try_take(now=0.05) > 0.0  # half a token refilled
        assert bucket.try_take(now=0.151) == 0.0  # > one token refilled

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2, now=0.0)
        # A long idle period must not bank more than `burst` tokens.
        assert bucket.try_take(now=100.0) == 0.0
        assert bucket.try_take(now=100.0) == 0.0
        assert bucket.try_take(now=100.0) > 0.0

    def test_wait_hint_is_exact(self):
        bucket = TokenBucket(rate=2.0, burst=1, now=0.0)
        assert bucket.try_take(now=0.0) == 0.0
        # 0 tokens left, rate 2/s: next token in 0.5 s.
        assert bucket.try_take(now=0.0) == pytest.approx(0.5)
        # After 0.2 s, 0.4 tokens: 0.3 s to go.
        assert bucket.try_take(now=0.2) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)


class TestJitter:
    def test_delay_bounds_and_hint_scaling(self):
        rng = random.Random(0)
        for hint in (1, 100, 30_000):
            for _ in range(200):
                delay = _retry_delay_s(hint, rng)
                assert hint * 0.5 / 1e3 <= delay < hint * 1.5 / 1e3

    def test_seeded_sequences_reproduce(self):
        a = [_retry_delay_s(100, random.Random(7)) for _ in range(1)]
        b = [_retry_delay_s(100, random.Random(7)) for _ in range(1)]
        assert a == b
        # Different seeds decorrelate the herd.
        r1, r2 = random.Random(1), random.Random(2)
        s1 = [_retry_delay_s(100, r1) for _ in range(8)]
        s2 = [_retry_delay_s(100, r2) for _ in range(8)]
        assert s1 != s2

    def test_garbage_hint_falls_back(self):
        rng = random.Random(0)
        assert 0.05 <= _retry_delay_s(None, rng) < 0.15
        assert 0.05 <= _retry_delay_s("soon", rng) < 0.15
        # Hint 0 clamps to 1 ms, never a zero/negative sleep.
        assert _retry_delay_s(0, rng) > 0.0


class TestRateLimitE2E:
    def test_rate_limited_rejection_carries_bucket_hint(self):
        async def main():
            svc = SortingService(tenant_rate=2.0, tenant_burst=2)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            job = {"kind": "plan", "n": 4, "faults": [3]}
            acks = [await client.submit(job, tenant="metered")
                    for _ in range(4)]
            ok = [a for a in acks if a.get("ok")]
            rejected = [a for a in acks if not a.get("ok")]
            assert len(ok) == 2  # the burst
            assert rejected and all(
                a["error"] == "rate_limited"
                and a["scope"] == "jobs_per_sec"
                and 1 <= a["retry_after_ms"] <= 1000
                for a in rejected)
            # The un-metered default path: another tenant is unaffected.
            other = await client.submit(job, tenant="other")
            assert other["ok"]
            stats = await client.stats()
            assert stats["rejected"]["rate_limited"] == len(rejected)
            for ack in (*ok, other):
                assert (await client.result(ack["job_id"]))["ok"]
            await _stop(svc, server, client)

        asyncio.run(main())

    def test_retry_true_rides_out_the_limit(self):
        async def main():
            svc = SortingService(tenant_rate=50.0, tenant_burst=1)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            job = {"kind": "plan", "n": 4, "faults": [3]}
            acks = [await client.submit(job, tenant="patient", retry=True)
                    for _ in range(5)]
            assert all(a["ok"] for a in acks)
            for ack in acks:
                assert (await client.result(ack["job_id"]))["ok"]
            await _stop(svc, server, client)

        asyncio.run(main())

    def test_max_inflight_cap_and_release(self, monkeypatch):
        gate = threading.Event()

        def gated(specs):
            gate.wait(timeout=30)
            return run_job_batch(specs)

        monkeypatch.setattr(server_mod, "run_job_batch", gated)

        async def main():
            svc = SortingService(max_inflight_per_tenant=2, batch_max=1)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            job = {"kind": "chaos", "index": 0}
            first = await client.submit(job, tenant="capped")
            second = await client.submit({**job, "index": 1}, tenant="capped")
            assert first["ok"] and second["ok"]
            third = await client.submit({**job, "index": 2}, tenant="capped")
            assert not third["ok"]
            assert third["error"] == "rate_limited"
            assert third["scope"] == "max_inflight"
            assert third["retry_after_ms"] >= 1
            # Another tenant is not throttled by the capped one.
            other = await client.submit({**job, "index": 3}, tenant="free")
            assert other["ok"]
            gate.set()
            for ack in (first, second, other):
                await client.result(ack["job_id"])
            # Delivered results release the cap.
            retry = await client.submit({**job, "index": 4}, tenant="capped")
            assert retry["ok"]
            await client.result(retry["job_id"])
            await _stop(svc, server, client)

        asyncio.run(main())

    def test_inflight_check_consumes_no_token(self, monkeypatch):
        # A submit rejected on max_inflight must not also burn a rate
        # token — otherwise a capped tenant starves its own retries.
        gate = threading.Event()

        def gated(specs):
            gate.wait(timeout=30)
            return run_job_batch(specs)

        monkeypatch.setattr(server_mod, "run_job_batch", gated)

        async def main():
            svc = SortingService(max_inflight_per_tenant=1,
                                 tenant_rate=1000.0, tenant_burst=2)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            job = {"kind": "chaos", "index": 0}
            first = await client.submit(job, tenant="t")
            assert first["ok"]
            for i in range(3):
                rej = await client.submit({**job, "index": 1 + i}, tenant="t")
                assert rej["error"] == "rate_limited"
                assert rej["scope"] == "max_inflight"
            gate.set()
            await client.result(first["job_id"])
            # One token was spent (the admit); the second is still there.
            nxt = await client.submit({**job, "index": 9}, tenant="t")
            assert nxt["ok"], nxt
            await client.result(nxt["job_id"])
            await _stop(svc, server, client)

        asyncio.run(main())
