"""Server end-to-end: dispatch, backpressure, drain, transports, signals.

In-process tests drive a :class:`SortingService` over a real TCP loopback
socket with :class:`ServiceClient` (the loop run via ``asyncio.run`` — the
suite has no async plugin).  Transport/signal tests spawn the actual
``repro serve`` CLI as a subprocess.
"""

import asyncio
import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro.service.server as server_mod
from repro.service import ServiceClient, SortingService
from repro.service.jobs import run_job_batch

REPO = Path(__file__).resolve().parents[2]


async def _start(svc: SortingService):
    server = await svc.start_tcp()
    return server, server.sockets[0].getsockname()[1]


async def _stop(svc, server, *clients):
    for c in clients:
        await c.close()
    server.close()
    await server.wait_closed()
    await svc.aclose()


class TestEndToEnd:
    def test_multi_tenant_sorts_verify_and_batch(self):
        async def main():
            svc = SortingService(batch_max=4)
            server, port = await _start(svc)
            a = await ServiceClient.connect(port=port)
            b = await ServiceClient.connect(port=port)
            acks = []
            for i in range(4):
                acks.append(await a.submit(
                    {"kind": "sort", "n": 4, "faults": [3, 9], "keys": 128,
                     "seed": i}, tenant="alpha"))
            for i in range(2):
                acks.append(await b.submit(
                    {"kind": "plan", "n": 5, "faults": [0, 7]}, tenant="beta"))
            assert all(ack["ok"] for ack in acks)
            assert len({ack["job_id"] for ack in acks}) == 6
            results = [await a.result(ack["job_id"]) for ack in acks[:4]]
            results += [await b.result(ack["job_id"]) for ack in acks[4:]]
            assert all(r["ok"] for r in results)
            assert all(r["result"]["verified"] for r in results[:4])
            assert all(r["result"]["mincut"] >= 1 for r in results[4:])
            stats = await a.stats()
            assert stats["completed"] == 6
            assert stats["tenants"]["alpha"]["completed"] == 4
            assert stats["tenants"]["beta"]["completed"] == 2
            # Repeated identical planning problems show up as per-tenant
            # plan-cache traffic (exact in the inline executor).
            assert stats["tenants"]["beta"]["plancache"]["hits"] >= 1
            await _stop(svc, server, a, b)
        asyncio.run(main())

    def test_compatible_jobs_batch_across_tenants(self, monkeypatch):
        # Hold the dispatcher at the gate while four compatible sorts from
        # two tenants queue up, then release: they run as one round-trip.
        gate = threading.Event()

        def gated(specs):
            gate.wait(timeout=30)
            return run_job_batch(specs)

        monkeypatch.setattr(server_mod, "run_job_batch", gated)

        async def main():
            svc = SortingService(batch_max=8)
            server, port = await _start(svc)
            a = await ServiceClient.connect(port=port)
            b = await ServiceClient.connect(port=port)
            # The gate job occupies the (single) executor thread first.
            pilot = await a.submit({"kind": "chaos", "index": 0}, tenant="x")
            while not svc.in_flight:
                await asyncio.sleep(0.005)
            job = {"kind": "sort", "n": 4, "faults": [3, 9], "keys": 64}
            acks = [await (a if i % 2 else b).submit(
                {**job, "seed": i}, tenant="ab"[i % 2])
                for i in range(4)]
            gate.set()
            assert (await a.result(pilot["job_id"]))["ok"]
            results = [await (a if i % 2 else b).result(acks[i]["job_id"])
                       for i in range(4)]
            assert {r["batched"] for r in results} == {4}
            stats = await a.stats()
            assert stats["batches"] == 2  # pilot alone + the fused four
            assert stats["batched_jobs"] == 3
            await _stop(svc, server, a, b)
        asyncio.run(main())

    def test_failing_job_is_a_result_not_a_disconnect(self):
        async def main():
            svc = SortingService()
            server, port = await _start(svc)
            c = await ServiceClient.connect(port=port)
            res = await c.submit_and_wait(
                {"kind": "chaos", "index": 0, "seed": 3}, tenant="t")
            assert res["ok"]
            assert (await c.ping())["op"] == "pong"
            await _stop(svc, server, c)
        asyncio.run(main())

    def test_malformed_requests_get_answers(self):
        async def main():
            svc = SortingService()
            server, port = await _start(svc)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            for raw in (b"this is not json\n",
                        b'{"op": "frobnicate", "id": "x"}\n',
                        b'{"op": "submit", "tenant": "t", "job": {"kind": "sort", "n": 99}}\n',
                        b'{"op": "submit", "tenant": "", "job": {"kind": "sort"}}\n'):
                writer.write(raw)
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert reply["ok"] is False
                assert reply["error"] == "bad_request"
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            await svc.aclose()
        asyncio.run(main())


class TestBackpressure:
    def test_queue_full_carries_retry_after(self, monkeypatch):
        gate = threading.Event()

        def gated(specs):
            gate.wait(timeout=30)
            return run_job_batch(specs)

        monkeypatch.setattr(server_mod, "run_job_batch", gated)

        async def main():
            svc = SortingService(max_queued=64, max_queued_per_tenant=2,
                                 batch_max=1)
            server, port = await _start(svc)
            c = await ServiceClient.connect(port=port)
            job = {"kind": "chaos", "index": 0}
            first = await c.submit(job, tenant="t")
            assert first["ok"]
            for _ in range(100):  # wait for the dispatcher to take it
                if svc.in_flight:
                    break
                await asyncio.sleep(0.01)
            assert svc.in_flight == 1
            q1 = await c.submit(job, tenant="t")
            q2 = await c.submit(job, tenant="t")
            assert q1["ok"] and q2["ok"]
            rejected = await c.submit(job, tenant="t")
            assert rejected["ok"] is False
            assert rejected["error"] == "queue_full"
            assert rejected["scope"] == "tenant"
            assert rejected["retry_after_ms"] >= 50
            gate.set()
            for ack in (first, q1, q2):
                assert (await c.result(ack["job_id"]))["ok"]
            stats = await c.stats()
            assert stats["rejected"]["full"] == 1
            await _stop(svc, server, c)
        asyncio.run(main())

    def test_client_retry_rides_out_queue_full(self, monkeypatch):
        gate = threading.Event()

        def gated(specs):
            gate.wait(timeout=30)
            return run_job_batch(specs)

        monkeypatch.setattr(server_mod, "run_job_batch", gated)

        async def main():
            svc = SortingService(max_queued=1, max_queued_per_tenant=1,
                                 batch_max=1)
            server, port = await _start(svc)
            c = await ServiceClient.connect(port=port)
            svc._ema_run_ms = 1.0  # keep the retry sleeps short
            first = await c.submit({"kind": "chaos", "index": 0}, tenant="t")
            while not svc.in_flight:
                await asyncio.sleep(0.005)
            blocker = await c.submit({"kind": "chaos", "index": 1}, tenant="t")
            assert blocker["ok"]
            retrying = asyncio.create_task(c.submit(
                {"kind": "chaos", "index": 2}, tenant="t", retry=True))
            await asyncio.sleep(0.05)
            assert not retrying.done()  # stuck behind the full queue
            gate.set()
            ack = await retrying
            assert ack["ok"]
            for a in (first, blocker, ack):
                assert (await c.result(a["job_id"]))["ok"]
            await _stop(svc, server, c)
        asyncio.run(main())


class TestDrain:
    def test_drain_finishes_queued_and_in_flight_jobs(self, monkeypatch):
        gate = threading.Event()

        def gated(specs):
            gate.wait(timeout=30)
            return run_job_batch(specs)

        monkeypatch.setattr(server_mod, "run_job_batch", gated)

        async def main():
            svc = SortingService(batch_max=1)
            server, port = await _start(svc)
            c = await ServiceClient.connect(port=port)
            ops = await ServiceClient.connect(port=port)
            acks = [await c.submit({"kind": "chaos", "index": i}, tenant="t")
                    for i in range(5)]
            assert all(a["ok"] for a in acks)
            drain_task = asyncio.create_task(ops.drain())
            await asyncio.sleep(0.05)
            assert not drain_task.done()  # barrier holds while jobs run
            late = await c.submit({"kind": "chaos", "index": 9}, tenant="t")
            assert late["error"] == "draining"
            gate.set()
            results = [await c.result(a["job_id"]) for a in acks]
            assert all(r["ok"] for r in results)  # zero loss
            drained = await drain_task
            assert drained["ok"] and drained["completed"] == 5
            assert svc.drained.is_set()
            await _stop(svc, server, c, ops)
        asyncio.run(main())

    def test_drain_flushes_plancache_metrics(self, tmp_path):
        async def main():
            out = tmp_path / "obs.json"
            svc = SortingService(obs_out=str(out))
            server, port = await _start(svc)
            c = await ServiceClient.connect(port=port)
            await c.submit_and_wait(
                {"kind": "plan", "n": 5, "faults": [3, 12]}, tenant="t")
            drained = await c.drain()
            assert drained["flushed"] == str(out)
            snapshot = json.loads(out.read_text())
            assert "plancache.hits" in snapshot["metrics"]["counters"]
            assert snapshot["service"]["tenants"]["t"]["completed"] == 1
            await _stop(svc, server, c)
        asyncio.run(main())


def _read_messages(stream, want_results, want_ops):
    """Collect pushed results and op replies from a server's output."""
    results, ops = [], {}
    while len(results) < want_results or not want_ops <= set(ops):
        line = stream.readline()
        assert line, "server output ended early"
        msg = json.loads(line)
        if msg.get("op") == "result":
            results.append(msg)
        else:
            ops[msg.get("op")] = msg
    return results, ops


class TestSubprocessTransports:
    def test_stdio_transport_round_trip(self):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--stdio"],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL, cwd=REPO, text=True,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        try:
            for i in range(3):
                proc.stdin.write(json.dumps({
                    "op": "submit", "id": f"s{i}", "tenant": "stdio",
                    "job": {"kind": "plan", "n": 5, "faults": [1, 6],
                            "seed": i},
                }) + "\n")
            proc.stdin.write('{"op": "drain", "id": "d"}\n')
            proc.stdin.flush()
            results, ops = _read_messages(proc.stdout, 3, {"drained"})
            assert all(r["ok"] for r in results)
            assert ops["drained"]["completed"] == 3
            proc.stdin.close()
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    def test_sigterm_drains_without_losing_jobs(self, tmp_path):
        port_file = tmp_path / "port"
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--port-file", str(port_file)],
            cwd=REPO, stderr=subprocess.DEVNULL,
            env={**os.environ, "PYTHONPATH": "src"},
        )
        try:
            deadline = time.monotonic() + 30
            while not port_file.exists() or not port_file.read_text().strip():
                assert time.monotonic() < deadline, "server never bound"
                time.sleep(0.05)
            port = int(port_file.read_text())

            async def main():
                c = await ServiceClient.connect(port=port)
                acks = [await c.submit(
                    {"kind": "sort", "n": 5, "faults": [3, 12],
                     "keys": 4096, "seed": i}, tenant="sig")
                    for i in range(6)]
                assert all(a["ok"] for a in acks)
                proc.send_signal(signal.SIGTERM)
                # Every accepted job still completes and is delivered.
                results = [await c.result(a["job_id"]) for a in acks]
                assert all(r["ok"] and r["result"]["verified"]
                           for r in results)
                await c.close()

            asyncio.run(main())
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()
