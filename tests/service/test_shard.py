"""Sharded deployment: ring placement, failover, gossip, zero-loss drain.

Unit tests cover the consistent-hash ring's determinism and minimal-motion
property.  The e2e tests spawn real shard server subprocesses via
:class:`ShardManager` and drive an in-process :class:`ShardRouter` over
TCP loopback — including the crash drill: ``kill -9`` a shard mid-stream
and assert the client sees a clean retryable error, the tenant reroutes
to a survivor, and the dead shard's ``/dev/shm`` segments are reclaimed.
"""

import asyncio
import glob
import os
import signal

import numpy as np
import pytest

from repro.service import HashRing, ServiceClient, ShardManager, StreamError
from repro.service.router import ShardRouter


class TestHashRing:
    def test_deterministic_and_total(self):
        a, b = HashRing(), HashRing()
        for ring in (a, b):
            for member in ("s0", "s1", "s2"):
                ring.add(member)
        tenants = [f"tenant-{i}" for i in range(200)]
        assert [a.route(t) for t in tenants] == [b.route(t) for t in tenants]
        # Every member owns some tenants at this scale.
        owners = {a.route(t) for t in tenants}
        assert owners == {"s0", "s1", "s2"}

    def test_removal_moves_only_the_lost_members_tenants(self):
        ring = HashRing()
        for member in ("s0", "s1", "s2"):
            ring.add(member)
        tenants = [f"t{i}" for i in range(300)]
        before = {t: ring.route(t) for t in tenants}
        ring.remove("s1")
        after = {t: ring.route(t) for t in tenants}
        for t in tenants:
            if before[t] != "s1":
                assert after[t] == before[t]  # unaffected tenants stay put
            else:
                assert after[t] in ("s0", "s2")

    def test_preference_starts_with_owner_and_covers_all(self):
        ring = HashRing()
        for member in ("s0", "s1", "s2", "s3"):
            ring.add(member)
        for t in ("alpha", "beta", "gamma"):
            pref = ring.preference(t)
            assert pref[0] == ring.route(t)
            assert sorted(pref) == ["s0", "s1", "s2", "s3"]

    def test_empty_and_duplicate_edges(self):
        ring = HashRing()
        assert ring.preference("x") == []
        with pytest.raises(LookupError):
            ring.route("x")
        ring.add("s0")
        ring.add("s0")  # idempotent
        assert ring.route("anything") == "s0"
        ring.remove("missing")  # no-op
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


def _tenant_on(ring: HashRing, shard_id: str, hint: str) -> str:
    """A tenant name the ring places on ``shard_id``."""
    for i in range(10_000):
        name = f"{hint}{i}"
        if ring.route(name) == shard_id:
            return name
    raise AssertionError(f"no tenant found for {shard_id}")


async def _sharded(count=2, **opts):
    """Spawn shards + an in-process router; return (manager, router, port)."""
    manager = ShardManager(count, **opts)
    await manager.start()
    router = ShardRouter(manager.shards, gossip_interval=0.0)  # manual ticks
    await router.start()
    server = await router.start_tcp()
    port = server.sockets[0].getsockname()[1]
    return manager, router, server, port


async def _teardown(manager, router, server, *clients):
    for c in clients:
        await c.close()
    server.close()
    await server.wait_closed()
    await router.aclose()
    await manager.stop()


class TestShardedEndToEnd:
    def test_tenant_affinity_and_namespaced_ids(self):
        async def main():
            manager, router, server, port = await _sharded(2)
            client = await ServiceClient.connect(port=port)
            t0 = _tenant_on(router.ring, "s0", "a")
            t1 = _tenant_on(router.ring, "s1", "b")
            job = {"kind": "plan", "n": 4, "faults": [3]}
            acks0 = [await client.submit(job, tenant=t0) for _ in range(3)]
            acks1 = [await client.submit(job, tenant=t1) for _ in range(3)]
            assert all(a["ok"] for a in acks0 + acks1)
            # Affinity: every job of a tenant lands on its ring shard,
            # visibly namespaced in the global job id.
            assert all(a["job_id"].startswith("s0:") for a in acks0)
            assert all(a["job_id"].startswith("s1:") for a in acks1)
            for ack in acks0 + acks1:
                result = await client.result(ack["job_id"])
                assert result["ok"] and result["job_id"] == ack["job_id"]
            stats = await client.stats()
            assert stats["router"]["shards_up"] == 2
            assert stats["shards"]["s0"]["completed"] == 3
            assert stats["shards"]["s1"]["completed"] == 3
            await _teardown(manager, router, server, client)

        asyncio.run(main())

    def test_streamed_results_relay_through_router(self):
        async def main():
            manager, router, server, port = await _sharded(2)
            client = await ServiceClient.connect(port=port)
            tenant = _tenant_on(router.ring, "s1", "streamer")
            keys, seed = 30_000, 11
            ack = await client.submit(
                {"kind": "sort", "n": 4, "keys": keys, "seed": seed,
                 "stream": True}, tenant=tenant)
            assert ack["ok"] and ack["job_id"].startswith("s1:")
            streamed = await client.collect_stream(ack["job_id"])
            rng = np.random.default_rng(seed)
            expected = np.sort(rng.integers(0, 10**6, size=keys).astype(float))
            assert streamed.tobytes() == expected.tobytes()
            summary = client.stream_summary(ack["job_id"])
            assert summary["ok"] and summary["result"]["verified"]
            await _teardown(manager, router, server, client)

        asyncio.run(main())
        assert not glob.glob("/dev/shm/repro_shm_*")

    def test_gossip_warms_the_other_shards_cache(self):
        async def main():
            manager, router, server, port = await _sharded(2)
            client = await ServiceClient.connect(port=port)
            t0 = _tenant_on(router.ring, "s0", "payer")
            t1 = _tenant_on(router.ring, "s1", "rider")
            faults = (3, 12, 21)
            image = tuple(sorted(f ^ 9 for f in faults))   # same orbit
            other = tuple(sorted(f ^ 17 for f in faults))  # same orbit again
            # Shard s0 pays: two sightings of one orbit -> canonical entry.
            for fs in (faults, image):
                r = await client.submit_and_wait(
                    {"kind": "plan", "n": 5, "faults": list(fs)}, tenant=t0)
                assert r["ok"]
            pushed = await router.gossip_once()
            assert pushed >= 1
            # Shard s1 rides: its *first* sighting of the orbit hits the
            # gossiped canonical plan instead of planning from scratch.
            before = (await client.stats())["shards"]["s1"]
            assert before["orbit"]["imported"] >= 1
            r = await client.submit_and_wait(
                {"kind": "plan", "n": 5, "faults": list(other)}, tenant=t1)
            assert r["ok"]
            after = (await client.stats())["shards"]["s1"]
            gained = (after["tenants"][t1]["plancache"]["hits"]
                      - before["tenants"].get(t1, {}).get(
                          "plancache", {}).get("hits", 0))
            assert gained >= 1
            # Transitivity guard: nothing gossips back as new next round.
            assert await router.gossip_once() == 0
            await _teardown(manager, router, server, client)

        asyncio.run(main())

    def test_kill_dash_nine_mid_stream_fails_over_cleanly(self):
        async def main():
            manager, router, server, port = await _sharded(2)
            client = await ServiceClient.connect(port=port)
            victim_id = "s0"
            victim = next(s for s in manager.shards if s.id == victim_id)
            tenant = _tenant_on(router.ring, victim_id, "unlucky")
            keys = 1 << 20  # 16 frames at the default chunk: a real stream
            ack = await client.submit(
                {"kind": "sort", "n": 4, "keys": keys, "seed": 5,
                 "stream": True}, tenant=tenant)
            assert ack["ok"] and ack["job_id"].startswith("s0:")
            consumed = 0
            with pytest.raises(StreamError) as err:
                async for chunk in client.iter_result(ack["job_id"]):
                    consumed += chunk.size
                    if consumed and victim.proc.returncode is None:
                        # Mid-stream: the array is partially delivered.
                        os.kill(victim.pid, signal.SIGKILL)
                        await victim.proc.wait()
            assert err.value.retryable  # clean, resubmittable failure
            assert 0 < consumed < keys
            # The router noticed, rerouted the tenant, reclaimed segments.
            for _ in range(500):
                if router.ring.route(tenant) != victim_id:
                    break
                await asyncio.sleep(0.01)
            assert router.ring.route(tenant) != victim_id
            assert not glob.glob(f"/dev/shm/{victim.shm_prefix}*")
            # Resubmission lands on the survivor and completes.
            retry = await client.submit(
                {"kind": "sort", "n": 4, "keys": 4096, "seed": 5,
                 "stream": True}, tenant=tenant, retry=True)
            assert retry["ok"] and retry["job_id"].startswith("s1:")
            streamed = await client.collect_stream(retry["job_id"])
            assert streamed.size == 4096
            assert client.stream_summary(retry["job_id"])["ok"]
            # Zero-loss drain of the survivors.
            summary = await client.drain()
            assert summary["shards"] == 1
            stats = (await client.stats())["router"]
            assert stats["failovers"] == 1
            assert stats["jobs_failed_over"] >= 0
            await _teardown(manager, router, server, client)

        asyncio.run(main())
        assert not glob.glob("/dev/shm/repro_shm_*")

    def test_multi_shard_drain_loses_nothing(self):
        async def main():
            manager, router, server, port = await _sharded(2)
            client = await ServiceClient.connect(port=port)
            jobs = 10
            acks = [await client.submit(
                {"kind": "sort", "n": 4, "keys": 256, "seed": i},
                tenant=f"t{i}", retry=True) for i in range(jobs)]
            assert all(a["ok"] for a in acks)
            results = [await client.result(a["job_id"]) for a in acks]
            assert all(r["ok"] for r in results)
            summary = await client.drain()
            # Drain sums every shard's counters: all accepted jobs ran.
            assert summary["completed"] == jobs
            assert summary["failed"] == 0
            assert summary["shards"] == 2
            # Draining router rejects new work explicitly.
            late = await client.submit(
                {"kind": "plan", "n": 4, "faults": [1]}, tenant="late")
            assert not late["ok"] and late["error"] == "draining"
            await _teardown(manager, router, server, client)

        asyncio.run(main())
        assert not glob.glob("/dev/shm/repro_shm_*")
