"""Result streaming: byte identity, checksums, flow control, lifecycle.

The contract under test: a ``stream: true`` sort delivers *exactly* the
bytes the inline paths deliver — chunked, checksummed, window-throttled —
over either transport, and every arena segment involved is gone once the
stream ends (consumed, aborted, or stalled).
"""

import asyncio
import base64
import glob

import numpy as np
import pytest

from repro.service import (
    ServiceClient,
    SortingService,
    StreamChecksumError,
    frame_checksum,
    plan_frames,
    verify_frame,
)


def _shm_clean() -> bool:
    return not glob.glob("/dev/shm/repro_shm_*")


def _expected(seed: int, keys: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return np.sort(rng.integers(0, 10**6, size=keys).astype(float))


async def _start(svc: SortingService):
    server = await svc.start_tcp()
    return server, server.sockets[0].getsockname()[1]


async def _stop(svc, server, *clients):
    for c in clients:
        await c.close()
    server.close()
    await server.wait_closed()
    await svc.aclose()


class TestFrameHelpers:
    def test_plan_frames_partitions_exactly(self):
        assert plan_frames(10, 4) == [(0, 4), (4, 4), (8, 2)]
        assert plan_frames(4, 4) == [(0, 4)]
        assert plan_frames(0, 4) == [(0, 0)]
        with pytest.raises(ValueError):
            plan_frames(10, 0)
        # Every key appears in exactly one frame, in order.
        frames = plan_frames(100_001, 4096)
        assert frames[0][0] == 0
        assert sum(length for _start, length in frames) == 100_001
        assert all(frames[i][0] + frames[i][1] == frames[i + 1][0]
                   for i in range(len(frames) - 1))

    def test_checksum_round_trip_and_tamper(self):
        chunk = np.arange(1000, dtype=np.float64)
        count, total = frame_checksum(chunk)
        msg = {"seq": 0, "count": count, "sum": total}
        verify_frame(msg, chunk)  # identical buffer -> exact match
        with pytest.raises(StreamChecksumError):
            verify_frame(msg, chunk[:-1])  # dropped element
        tampered = chunk.copy()
        tampered[500] += 1.0
        with pytest.raises(StreamChecksumError):
            verify_frame(msg, tampered)  # flipped value

    def test_empty_frame_checksums(self):
        count, total = frame_checksum(np.empty(0, dtype=np.float64))
        assert (count, total) == (0, 0.0)


class TestStreamedResults:
    @pytest.mark.parametrize("transport", ["binary", "shm"])
    def test_streamed_bytes_identical_to_inline(self, transport):
        keys, seed = 20_000, 42

        async def main():
            svc = SortingService(stream_chunk=4096)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            job = {"kind": "sort", "n": 4, "faults": [3], "keys": keys,
                   "seed": seed}
            # Inline baseline: the whole array as base64 in one result.
            inline = await client.submit_and_wait({**job, "return_keys": True})
            assert inline["ok"]
            baseline = np.frombuffer(
                base64.b64decode(inline["result"]["keys_b64"]),
                dtype=np.float64)
            # Streamed: checksummed frames over the chosen transport.
            ack = await client.submit({**job, "stream": True},
                                      transport=transport)
            assert ack["ok"], ack
            chunks = [c async for c in client.iter_result(ack["job_id"])]
            streamed = np.concatenate(chunks)
            header = client.stream_header(ack["job_id"])
            summary = client.stream_summary(ack["job_id"])
            assert summary["ok"] and summary["result"]["verified"]
            assert len(chunks) == summary["frames"] == -(-keys // 4096)
            assert streamed.tobytes() == baseline.tobytes()
            assert streamed.tobytes() == _expected(seed, keys).tobytes()
            stats = await client.stats()
            assert stats["streams"]["jobs"] == 1
            assert stats["streams"]["frames"] == len(chunks)
            assert stats["streams"]["open"] == 0
            await _stop(svc, server, client)
            assert header is None or header["count"] == keys

        asyncio.run(main())
        assert _shm_clean()

    def test_shm_transport_downgrades_below_break_even(self):
        # 16 keys = 128 bytes: far under LEAF_MIN_BYTES, so no segment is
        # ever created and the header must fall back to binary frames.
        async def main():
            svc = SortingService()
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            ack = await client.submit(
                {"kind": "sort", "n": 3, "keys": 16, "seed": 7,
                 "stream": True}, transport="shm")
            assert ack["ok"]
            streamed = await client.collect_stream(ack["job_id"])
            assert client.stream_header(ack["job_id"]) is None  # consumed
            summary = client.stream_summary(ack["job_id"])
            assert summary["ok"]
            assert streamed.tobytes() == _expected(7, 16).tobytes()
            await _stop(svc, server, client)

        asyncio.run(main())
        assert _shm_clean()

    def test_streamed_and_plain_jobs_share_a_batch(self):
        # A batch mixing streamed and non-streamed compatible sorts must
        # deliver both correctly (the batch goes through the arena path).
        async def main():
            svc = SortingService(batch_max=4, stream_chunk=2048)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            job = {"kind": "sort", "n": 4, "faults": [5], "keys": 6000}
            plain = await client.submit({**job, "seed": 1})
            stream = await client.submit({**job, "seed": 2, "stream": True})
            assert plain["ok"] and stream["ok"]
            streamed = await client.collect_stream(stream["job_id"])
            result = await client.result(plain["job_id"])
            assert result["ok"] and result["result"]["verified"]
            assert streamed.tobytes() == _expected(2, 6000).tobytes()
            await _stop(svc, server, client)

        asyncio.run(main())
        assert _shm_clean()

    def test_failing_streamed_job_raises_stream_error(self):
        from repro.service import StreamError

        async def main():
            svc = SortingService()
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            # A pre-stream executor failure answers with a plain failed
            # result; the stream consumer must surface it as StreamError.
            import repro.service.server as server_mod

            def boom(specs, *a):
                raise RuntimeError("executor exploded")

            orig = server_mod.run_job_batch_shm
            server_mod.run_job_batch_shm = boom
            try:
                ack = await client.submit(
                    {"kind": "sort", "n": 4, "keys": 8192, "stream": True})
                assert ack["ok"]
                with pytest.raises(StreamError):
                    async for _chunk in client.iter_result(ack["job_id"]):
                        pass
            finally:
                server_mod.run_job_batch_shm = orig
            await _stop(svc, server, client)

        asyncio.run(main())
        assert _shm_clean()


class TestFlowControlAndLifecycle:
    def test_stalled_consumer_aborts_stream_and_sweeps(self):
        # The client's reader enqueues frames but nobody iterates, so no
        # acks flow: the server must stall at its window, abort after
        # stream_ack_timeout, answer a retryable result_end, and leave
        # zero segments behind.
        from repro.service import StreamError

        async def main():
            svc = SortingService(stream_chunk=1024, stream_window=2,
                                 stream_ack_timeout=0.3)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            ack = await client.submit(
                {"kind": "sort", "n": 4, "keys": 50_000, "stream": True})
            assert ack["ok"]
            await asyncio.sleep(1.0)  # > ack timeout, consuming nothing
            with pytest.raises(StreamError) as err:
                async for _chunk in client.iter_result(ack["job_id"]):
                    pass  # the queued window frames, then the abort
            assert err.value.retryable
            assert err.value.message["error"] == "stream_stalled"
            stats = await client.stats()
            assert stats["streams"]["aborted"] == 1
            assert stats["streams"]["open"] == 0
            await _stop(svc, server, client)

        asyncio.run(main())
        assert _shm_clean()

    def test_disconnect_mid_stream_releases_leases(self):
        # Kill the client connection between frames: the server must
        # abort the stream, release the arena lease, and still drain to
        # zero with nothing left in /dev/shm.
        async def main():
            svc = SortingService(stream_chunk=1024, stream_window=1,
                                 stream_ack_timeout=5.0)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            ack = await client.submit(
                {"kind": "sort", "n": 4, "keys": 50_000, "stream": True},
                transport="shm")
            assert ack["ok"]
            # Wait for the stream to exist server-side, then vanish.
            for _ in range(500):
                if svc.stats()["streams"]["open"]:
                    break
                await asyncio.sleep(0.01)
            await client.close()
            monitor = await ServiceClient.connect(port=port)
            summary = await monitor.drain()
            assert summary["completed"] >= 1
            assert svc.stats()["streams"]["open"] == 0
            await _stop(svc, server, monitor)

        asyncio.run(main())
        assert _shm_clean()

    def test_window_meters_consumption(self):
        # With window=1 and a consumer that acks one frame at a time, the
        # stream still completes exactly (ordering + completeness).
        async def main():
            svc = SortingService(stream_chunk=512, stream_window=1)
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            ack = await client.submit(
                {"kind": "sort", "n": 3, "keys": 5000, "stream": True})
            assert ack["ok"]
            total = 0
            async for chunk in client.iter_result(ack["job_id"]):
                total += chunk.size
                await asyncio.sleep(0.002)  # slow consumer
            assert total == 5000
            assert client.stream_summary(ack["job_id"])["ok"]
            await _stop(svc, server, client)

        asyncio.run(main())
        assert _shm_clean()


class TestValidation:
    @pytest.mark.parametrize("job,field", [
        ({"kind": "plan", "n": 4, "stream": True}, "stream"),
        ({"kind": "chaos", "return_keys": True}, "return_keys"),
        ({"kind": "sort", "stream": True, "return_keys": True}, "exclusive"),
        ({"kind": "sort", "stream": "yes"}, "type"),
    ])
    def test_bad_stream_requests_rejected(self, job, field):
        async def main():
            svc = SortingService()
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            ack = await client.submit(job)
            assert not ack["ok"]
            assert ack["error"] == "bad_request"
            await _stop(svc, server, client)

        asyncio.run(main())

    def test_bad_transport_rejected(self):
        async def main():
            svc = SortingService()
            server, port = await _start(svc)
            client = await ServiceClient.connect(port=port)
            ack = await client.submit(
                {"kind": "sort", "keys": 64, "stream": True},
                transport="carrier_pigeon")
            assert not ack["ok"]
            assert ack["error"] == "bad_request"
            await _stop(svc, server, client)

        asyncio.run(main())
