"""Tests for repro.simulator.engine — the discrete-event kernel."""

from __future__ import annotations

import pytest

from repro.simulator.engine import EventEngine, Message
from repro.simulator.params import MachineParams


def params(t_element=1.0, t_startup=10.0):
    return MachineParams(t_compare=1.0, t_element=t_element, t_startup=t_startup)


class TestEventQueue:
    def test_events_run_in_time_order(self):
        eng = EventEngine(params())
        seen = []
        eng.schedule(5.0, lambda: seen.append("b"))
        eng.schedule(1.0, lambda: seen.append("a"))
        eng.schedule(9.0, lambda: seen.append("c"))
        eng.run()
        assert seen == ["a", "b", "c"]
        assert eng.now == 9.0

    def test_ties_fifo(self):
        eng = EventEngine(params())
        seen = []
        eng.schedule(1.0, lambda: seen.append(1))
        eng.schedule(1.0, lambda: seen.append(2))
        eng.run()
        assert seen == [1, 2]

    def test_run_until(self):
        eng = EventEngine(params())
        seen = []
        eng.schedule(1.0, lambda: seen.append(1))
        eng.schedule(5.0, lambda: seen.append(5))
        eng.run(until=2.0)
        assert seen == [1]
        assert eng.pending_events == 1
        eng.run()
        assert seen == [1, 5]

    def test_past_scheduling_rejected(self):
        eng = EventEngine(params())
        eng.schedule(5.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule(1.0, lambda: None)

    def test_reentrant_scheduling(self):
        eng = EventEngine(params())
        seen = []

        def first():
            seen.append("first")
            eng.schedule(eng.now + 1, lambda: seen.append("second"))

        eng.schedule(1.0, first)
        eng.run()
        assert seen == ["first", "second"]


class TestMessageTransport:
    def test_single_hop_latency(self):
        eng = EventEngine(params(t_element=2.0, t_startup=10.0))
        msg = Message(src=0, dst=1, size=5, path=[0, 1])
        done = []
        eng.send(msg, done.append)
        eng.run()
        assert msg.delivered_at == 10.0 + 5 * 2.0
        assert msg.latency == 20.0
        assert done == [msg]

    def test_store_and_forward_multi_hop(self):
        eng = EventEngine(params(t_element=1.0, t_startup=10.0))
        msg = Message(src=0, dst=3, size=5, path=[0, 1, 3])
        eng.send(msg, lambda m: None)
        eng.run()
        assert msg.delivered_at == 2 * (10 + 5)
        assert msg.hops_taken == 2

    def test_self_send_immediate(self):
        eng = EventEngine(params())
        msg = Message(src=2, dst=2, size=9, path=[2])
        eng.send(msg, lambda m: None)
        eng.run()
        assert msg.delivered_at == 0.0

    def test_link_contention_serializes(self):
        eng = EventEngine(params(t_element=1.0, t_startup=0.0))
        m1 = Message(src=0, dst=1, size=10, path=[0, 1])
        m2 = Message(src=0, dst=1, size=10, path=[0, 1])
        eng.send(m1, lambda m: None)
        eng.send(m2, lambda m: None)
        eng.run()
        assert m1.delivered_at == 10.0
        assert m2.delivered_at == 20.0  # queued behind m1

    def test_opposite_directions_dont_contend(self):
        eng = EventEngine(params(t_element=1.0, t_startup=0.0))
        m1 = Message(src=0, dst=1, size=10, path=[0, 1])
        m2 = Message(src=1, dst=0, size=10, path=[1, 0])
        eng.send(m1, lambda m: None)
        eng.send(m2, lambda m: None)
        eng.run()
        assert m1.delivered_at == 10.0
        assert m2.delivered_at == 10.0  # full duplex

    def test_bad_path_rejected(self):
        eng = EventEngine(params())
        with pytest.raises(ValueError):
            eng.send(Message(src=0, dst=1, size=1, path=[0, 2]), lambda m: None)
        with pytest.raises(ValueError):
            eng.send(Message(src=0, dst=1, size=1, path=[]), lambda m: None)

    def test_deferred_injection(self):
        eng = EventEngine(params(t_element=1.0, t_startup=0.0))
        msg = Message(src=0, dst=1, size=4, path=[0, 1])
        eng.send(msg, lambda m: None, at=100.0)
        eng.run()
        assert msg.sent_at == 100.0
        assert msg.delivered_at == 104.0

    def test_statistics(self):
        eng = EventEngine(params(t_element=1.0, t_startup=0.0))
        eng.send(Message(src=0, dst=3, size=10, path=[0, 1, 3]), lambda m: None)
        eng.send(Message(src=0, dst=1, size=10, path=[0, 1]), lambda m: None)
        eng.run()
        assert len(eng.delivered) == 2
        assert eng.total_link_busy() == 30.0
        assert eng.max_link_busy() == 20.0  # link (0,1) carried both
