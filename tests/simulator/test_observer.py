"""Tests for the PhaseMachine observer hook (used by the walkthroughs)."""

from __future__ import annotations

import numpy as np

from repro.core.ftsort import fault_tolerant_sort
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine


class TestObserverHook:
    def test_called_once_per_phase(self):
        m = PhaseMachine(2, params=MachineParams.unit())
        seen = []
        m.on_phase_end = lambda machine, rec: seen.append(rec.label)
        with m.phase("a"):
            m.charge_compute(0, 1)
        with m.phase("b"):
            pass
        assert seen == ["a", "b"]

    def test_observer_sees_final_record(self):
        m = PhaseMachine(2, params=MachineParams.unit())
        captured = {}

        def hook(machine, rec):
            captured["duration"] = rec.duration
            captured["elapsed"] = machine.elapsed

        m.on_phase_end = hook
        with m.phase("x"):
            m.charge_compute(1, 7)
        assert captured["duration"] == 7.0
        assert captured["elapsed"] == 7.0

    def test_observer_fires_even_on_exception(self):
        m = PhaseMachine(2, params=MachineParams.unit())
        seen = []
        m.on_phase_end = lambda machine, rec: seen.append(rec.label)
        try:
            with m.phase("boom"):
                raise RuntimeError("injected")
        except RuntimeError:
            pass
        assert seen == ["boom"]

    def test_ftsort_observer_snapshots_blocks(self, rng):
        keys = rng.integers(0, 100, size=47).astype(float)
        snapshots = []

        def observer(machine, rec):
            snapshots.append((rec.label, machine.total_keys()))

        res = fault_tolerant_sort(keys, 5, [3, 5, 16, 24], observer=observer)
        assert len(snapshots) == len(res.machine.phases)
        # key conservation at every phase boundary (padding included)
        total = snapshots[0][1]
        assert all(count == total for _, count in snapshots)
        np.testing.assert_array_equal(res.sorted_keys, np.sort(keys))

    def test_no_observer_by_default(self):
        m = PhaseMachine(2, params=MachineParams.unit())
        assert m.on_phase_end is None
        with m.phase("quiet"):
            pass  # must not raise
