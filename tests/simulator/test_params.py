"""Tests for repro.simulator.params."""

from __future__ import annotations

import pytest

from repro.simulator.params import MachineParams


class TestMachineParams:
    def test_defaults_match_ncube7(self):
        assert MachineParams() == MachineParams.ncube7()

    def test_unit(self):
        p = MachineParams.unit()
        assert p.t_compare == 1.0 and p.t_element == 1.0 and p.t_startup == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            MachineParams(t_compare=-1.0)

    def test_frozen(self):
        p = MachineParams.unit()
        with pytest.raises(AttributeError):
            p.t_compare = 2.0  # type: ignore[misc]

    def test_transfer_time_store_and_forward(self):
        p = MachineParams(t_compare=1, t_element=2, t_startup=10)
        # 3 hops, 5 elements: 3 * (10 + 5*2) = 60
        assert p.transfer_time(5, 3) == 60

    def test_transfer_time_zero_cases(self):
        p = MachineParams.ncube7()
        assert p.transfer_time(0, 4) == 0.0
        assert p.transfer_time(4, 0) == 0.0

    def test_transfer_time_rejects_negative(self):
        with pytest.raises(ValueError):
            MachineParams.unit().transfer_time(-1, 1)

    def test_compare_time(self):
        p = MachineParams(t_compare=3)
        assert p.compare_time(7) == 21

    def test_compare_time_rejects_negative(self):
        with pytest.raises(ValueError):
            MachineParams.unit().compare_time(-1)

    def test_ncube7_regime_compute_comparable_to_comm(self):
        # The calibration argument: t_c ~ t_s/r on this machine.
        p = MachineParams.ncube7()
        assert 0.5 <= p.t_compare / p.t_element <= 2.0
        assert p.t_startup > 10 * p.t_element

    def test_switching_validation(self):
        with pytest.raises(ValueError):
            MachineParams(switching="wormhole-ish")

    def test_cut_through_single_hop_equals_store_forward(self):
        sf = MachineParams(t_element=2, t_startup=10, switching="store_forward")
        ct = MachineParams(t_element=2, t_startup=10, switching="cut_through")
        assert sf.transfer_time(5, 1) == ct.transfer_time(5, 1)

    def test_cut_through_pipelines_multi_hop(self):
        sf = MachineParams(t_element=2, t_startup=10, switching="store_forward")
        ct = MachineParams(t_element=2, t_startup=10, switching="cut_through")
        # 4 hops, 100 elements: SF = 4*(10+200) = 840; CT = 10+200+3*2 = 216
        assert sf.transfer_time(100, 4) == 840
        assert ct.transfer_time(100, 4) == 216
        assert ct.transfer_time(100, 4) < sf.transfer_time(100, 4)

    def test_ncube2_preset(self):
        p = MachineParams.ncube2()
        assert p.switching == "cut_through"
        assert p.t_element < MachineParams.ncube7().t_element
