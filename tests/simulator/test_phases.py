"""Tests for repro.simulator.phases — the synchronous phase engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine


def unit_machine(n=3, faults=None):
    return PhaseMachine(n, params=MachineParams.unit(), faults=faults)


class TestBlocks:
    def test_set_get_roundtrip(self):
        m = unit_machine()
        m.set_block(3, [3.0, 1.0])
        assert m.get_block(3).tolist() == [3.0, 1.0]

    def test_set_copies(self):
        m = unit_machine()
        arr = np.array([1.0, 2.0])
        m.set_block(0, arr)
        arr[0] = 99.0
        assert m.get_block(0)[0] == 1.0

    def test_missing_block_empty(self):
        assert unit_machine().get_block(5).size == 0

    def test_faulty_node_cannot_store(self):
        m = unit_machine(faults=FaultSet(3, [2]))
        with pytest.raises(ValueError):
            m.set_block(2, [1.0])

    def test_total_keys_and_clear(self):
        m = unit_machine()
        m.set_block(0, [1.0, 2.0])
        m.set_block(1, [3.0])
        assert m.total_keys() == 3
        m.clear_blocks()
        assert m.total_keys() == 0

    def test_rejects_2d_blocks(self):
        with pytest.raises(ValueError):
            unit_machine().set_block(0, np.zeros((2, 2)))

    def test_fault_dimension_mismatch(self):
        with pytest.raises(ValueError):
            PhaseMachine(3, faults=FaultSet(4, [1]))


class TestPhaseAccounting:
    def test_phase_duration_is_max_over_nodes(self):
        m = unit_machine()
        with m.phase("p") as rec:
            m.charge_compute(0, 10)
            m.charge_compute(1, 3)
        assert rec.duration == 10.0
        assert m.elapsed == 10.0

    def test_phases_accumulate(self):
        m = unit_machine()
        with m.phase("a"):
            m.charge_compute(0, 4)
        with m.phase("b"):
            m.charge_compute(1, 6)
        assert m.elapsed == 10.0
        assert [p.label for p in m.phases] == ["a", "b"]

    def test_nested_phase_rejected(self):
        m = unit_machine()
        with m.phase("outer"):
            with pytest.raises(RuntimeError):
                with m.phase("inner"):
                    pass

    def test_charge_outside_phase_rejected(self):
        m = unit_machine()
        with pytest.raises(RuntimeError):
            m.charge_compute(0, 1)
        with pytest.raises(RuntimeError):
            m.charge_transfer(0, 1, 1)

    def test_transfer_charges_both_endpoints(self):
        m = unit_machine()
        with m.phase("t") as rec:
            m.charge_transfer(0, 1, 5, hops=1)
        assert rec.duration == 5.0  # 5 elements x 1 hop x unit cost
        assert rec.elements_sent == 5
        assert rec.element_hops == 5
        assert rec.messages == 1

    def test_transfer_accumulates_on_shared_node(self):
        m = unit_machine()
        with m.phase("t") as rec:
            m.charge_transfer(0, 1, 5, hops=1)
            m.charge_transfer(0, 2, 5, hops=1)
        assert rec.duration == 10.0  # node 0 did both transfers serially

    def test_swap_charges_once_per_node(self):
        m = unit_machine()
        with m.phase("s") as rec:
            m.charge_swap(0, 1, 5, hops=1)
        assert rec.duration == 5.0  # full duplex: one transfer interval
        assert rec.elements_sent == 10  # both directions counted as traffic
        assert rec.messages == 2

    def test_zero_element_transfer_free(self):
        m = unit_machine()
        with m.phase("t") as rec:
            m.charge_transfer(0, 1, 0)
            m.charge_swap(0, 1, 0)
        assert rec.duration == 0.0 and rec.messages == 0

    def test_negative_charges_rejected(self):
        m = unit_machine()
        with m.phase("t"):
            with pytest.raises(ValueError):
                m.charge_compute(0, -1)
            with pytest.raises(ValueError):
                m.charge_transfer(0, 1, -1)

    def test_startup_in_transfer(self):
        m = PhaseMachine(2, params=MachineParams(t_compare=0, t_element=1, t_startup=100))
        with m.phase("t") as rec:
            m.charge_transfer(0, 1, 10, hops=2)
        # 2 hops x (100 + 10) = 220
        assert rec.duration == 220.0

    def test_totals(self):
        m = unit_machine()
        with m.phase("a"):
            m.charge_compute(0, 3)
            m.charge_transfer(0, 1, 2, hops=2)
        assert m.total_comparisons() == 3
        assert m.total_elements_sent() == 2
        assert m.total_element_hops() == 4


class TestHops:
    def test_fault_free_hamming(self):
        m = unit_machine(4)
        assert m.hops(0b0000, 0b1011) == 3
        assert m.hops(5, 5) == 0

    def test_partial_faults_route_through(self):
        fs = FaultSet(3, [1, 3], kind=FaultKind.PARTIAL)
        m = unit_machine(3, faults=fs)
        # e-cube 0 -> 7 passes nodes 1, 3; partial faults forward anyway.
        assert m.hops(0, 7) == 3

    def test_total_faults_detour(self):
        fs = FaultSet(3, [1], kind=FaultKind.TOTAL)
        m = unit_machine(3, faults=fs)
        # 0 -> 3: direct routes via 1 or 2; avoiding 1 still gives 2 hops
        assert m.hops(0, 3) == 2
        # 0 -> 1 impossible (endpoint faulty)
        with pytest.raises(ValueError):
            m.hops(0, 1)

    def test_total_fault_longer_path(self):
        # Q_2: 0 -> 3 avoiding node 1 must go 0-2-3; avoiding both 1 and 2
        # is impossible, but that needs r = n faults.
        fs = FaultSet(2, [1], kind=FaultKind.TOTAL)
        m = unit_machine(2, faults=fs)
        assert m.hops(0, 3) == 2

    def test_hop_cache_consistency(self):
        fs = FaultSet(4, [3, 5, 9], kind=FaultKind.TOTAL)
        m = unit_machine(4, faults=fs)
        first = m.hops(0, 15)
        second = m.hops(0, 15)
        assert first == second
