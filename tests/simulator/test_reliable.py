"""Tests for reliable messaging: ACK/retry/backoff over dying links."""

from __future__ import annotations

import pytest

from repro.faults.model import FaultSet
from repro.obs import Tracer
from repro.simulator.engine import EventEngine, Message
from repro.simulator.router import Router


def _msg(src, dst, path, size=4):
    return Message(src=src, dst=dst, size=size, path=list(path))


class TestLinkDeath:
    def test_fail_link_registers_and_timestamps(self):
        eng = EventEngine()
        eng.fail_link(2, 6, at=5.0)
        eng.run()
        assert eng.link_dead(2, 6) and eng.link_dead(6, 2)
        assert eng.link_died_at(2, 6) == 5.0
        assert eng.dead_links == ((2, 6),)

    def test_dead_link_drops_in_flight_copy(self):
        eng = EventEngine()
        eng.fail_link(0, 1, at=0.0)
        got = []
        eng.send(_msg(0, 1, [0, 1]), got.append, at=1.0)
        eng.run()
        assert not got
        assert eng.dropped and eng.dropped[0].dropped_link == (0, 1)


class TestSendReliable:
    def test_clean_path_delivers_once_and_acks(self):
        eng = EventEngine()
        got = []
        rs = eng.send_reliable(_msg(0, 3, [0, 1, 3]), got.append, timeout=10_000.0)
        eng.run()
        assert len(got) == 1
        assert rs.attempts == 1 and rs.retries == 0
        assert rs.acked_at is not None and rs.acked_at > got[0].delivered_at

    def test_retry_same_path_after_timeout_succeeds_without_fault(self):
        # A short timeout forces a spurious retry; the duplicate delivery
        # is absorbed (on_delivered fires once).
        eng = EventEngine(obs=Tracer())
        got = []
        hop = eng.hop_time(4)
        rs = eng.send_reliable(_msg(0, 3, [0, 1, 3]), got.append, timeout=hop / 2)
        eng.run()
        assert len(got) == 1
        assert rs.attempts >= 2
        assert eng.obs.metrics.value("robust.duplicates") >= 1

    def test_reroute_absorbs_dead_link(self):
        eng = EventEngine()
        eng.fail_link(0, 1, at=0.0)
        got, asked = [], []

        def reroute(rs):
            asked.append(list(rs.dropped_links))
            return Router(FaultSet(2, links=[(0, 1)]), strategy="adaptive").route(0, 3)

        rs = eng.send_reliable(
            _msg(0, 3, [0, 1, 3]), got.append, timeout=100.0, reroute=reroute
        )
        eng.run()
        assert len(got) == 1
        assert rs.dropped_links == [(0, 1)]
        assert asked and asked[0] == [(0, 1)]
        assert got[0].path[1] == 2  # detoured through the surviving neighbor

    def test_giveup_after_max_retries(self):
        eng = EventEngine(obs=Tracer())
        eng.fail_link(0, 1, at=0.0)
        gave = []
        rs = eng.send_reliable(
            _msg(0, 1, [0, 1]), lambda m: None, timeout=50.0,
            max_retries=2, on_giveup=gave.append,
        )
        eng.run()
        assert rs.gave_up_at is not None
        assert rs.attempts == 3  # original + 2 retries
        assert gave == [rs]
        assert eng.obs.metrics.value("robust.giveups") == 1

    def test_backoff_spaces_out_retry_deadlines(self):
        eng = EventEngine()
        eng.fail_link(0, 1, at=0.0)
        rs = eng.send_reliable(
            _msg(0, 1, [0, 1]), lambda m: None, timeout=100.0,
            max_retries=2, backoff=2.0,
        )
        eng.run()
        # Deadlines at 100, then 100 + 200, then give up at +400.
        assert rs.gave_up_at == pytest.approx(100.0 + 200.0 + 400.0)

    def test_ack_lost_when_reverse_link_dies_triggers_retry(self):
        eng = EventEngine()
        hop = eng.hop_time(4)
        # The link dies while the forward copy is committed to the wire:
        # the delivery still completes, but the returning ACK is lost.
        eng.fail_link(0, 1, at=hop * 0.5)
        got = []
        rs = eng.send_reliable(_msg(0, 1, [0, 1]), got.append, timeout=10 * hop)
        eng.run()
        assert len(got) == 1  # delivered exactly once
        assert rs.acked_at is None and rs.gave_up_at is not None

    def test_parameter_validation(self):
        eng = EventEngine()
        with pytest.raises(ValueError):
            eng.send_reliable(_msg(0, 1, [0, 1]), lambda m: None, timeout=0.0)
        with pytest.raises(ValueError):
            eng.send_reliable(_msg(0, 1, [0, 1]), lambda m: None,
                              timeout=1.0, max_retries=-1)
        with pytest.raises(ValueError):
            eng.send_reliable(_msg(0, 1, [0, 1]), lambda m: None,
                              timeout=1.0, backoff=0.5)

    def test_metrics_counted(self):
        eng = EventEngine(obs=Tracer())
        eng.fail_link(0, 1, at=0.0)

        def reroute(rs):
            return Router(FaultSet(2, links=[(0, 1)]), strategy="adaptive").route(0, 3)

        eng.send_reliable(_msg(0, 3, [0, 1, 3]), lambda m: None,
                          timeout=100_000.0, reroute=reroute)
        eng.run()
        m = eng.obs.metrics
        assert m.value("robust.drops") == 1
        assert m.value("robust.timeouts") == 1
        assert m.value("robust.retries") == 1
        assert m.value("robust.acks") == 1
