"""Tests for repro.simulator.router — e-cube, adaptive and oracle routing."""

from __future__ import annotations

import pytest

from repro.cube.address import hamming_distance
from repro.faults.inject import random_faulty_processors
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.router import RouteError, Router


def path_is_valid(path, n):
    for a, b in zip(path, path[1:]):
        assert hamming_distance(a, b) == 1, f"non-neighbor hop {a}->{b}"


class TestStrategySelection:
    def test_auto_partial_is_ecube(self):
        r = Router(FaultSet(3, [1], kind=FaultKind.PARTIAL))
        assert r.strategy == "ecube"

    def test_auto_total_is_adaptive(self):
        r = Router(FaultSet(3, [1], kind=FaultKind.TOTAL))
        assert r.strategy == "adaptive"

    def test_auto_fault_free_is_ecube(self):
        assert Router(FaultSet(3)).strategy == "ecube"

    def test_auto_link_faults_adaptive(self):
        r = Router(FaultSet(3, links=[(0, 1)], kind=FaultKind.PARTIAL))
        assert r.strategy == "adaptive"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            Router(FaultSet(2), strategy="warp")


class TestEcube:
    def test_fault_free_paths(self):
        r = Router(FaultSet(4), strategy="ecube")
        for src, dst in [(0, 15), (3, 12), (7, 7)]:
            path = r.route(src, dst)
            path_is_valid(path, 4)
            assert len(path) == hamming_distance(src, dst) + 1

    def test_partial_fault_passthrough(self):
        r = Router(FaultSet(3, [1], kind=FaultKind.PARTIAL), strategy="ecube")
        path = r.route(0, 3)
        assert path == [0, 1, 3]  # passes through the partial fault

    def test_total_fault_blocks_ecube(self):
        r = Router(FaultSet(3, [1], kind=FaultKind.TOTAL), strategy="ecube")
        with pytest.raises(RouteError):
            r.route(0, 3)

    def test_link_fault_blocks_ecube(self):
        r = Router(FaultSet(3, links=[(0, 1)]), strategy="ecube")
        with pytest.raises(RouteError):
            r.route(0, 1)


class TestShortest:
    def test_matches_hamming_fault_free(self):
        r = Router(FaultSet(4), strategy="shortest")
        for src in (0, 7):
            for dst in range(16):
                assert r.hops(src, dst) == hamming_distance(src, dst)

    def test_detours_around_total_faults(self):
        r = Router(FaultSet(2, [1], kind=FaultKind.TOTAL), strategy="shortest")
        assert r.route(0, 3) == [0, 2, 3]

    def test_raises_when_disconnected(self):
        r = Router(FaultSet(2, [1, 2], kind=FaultKind.TOTAL), strategy="shortest")
        with pytest.raises(RouteError):
            r.route(0, 3)

    def test_avoids_faulty_links(self):
        r = Router(FaultSet(2, links=[(0, 1)]), strategy="shortest")
        assert r.route(0, 1) == [0, 2, 3, 1]


class TestAdaptive:
    def test_fault_free_is_minimal(self):
        r = Router(FaultSet(4), strategy="adaptive")
        for src, dst in [(0, 15), (5, 10), (1, 1)]:
            assert len(r.route(src, dst)) == hamming_distance(src, dst) + 1

    def test_always_delivers_under_model_faults(self, rng):
        # r <= n-1 total faults: Q_n stays connected, adaptive must deliver.
        for _ in range(40):
            n = int(rng.integers(3, 6))
            r_faults = int(rng.integers(1, n))
            faults = FaultSet(
                n, random_faulty_processors(n, r_faults, rng), kind=FaultKind.TOTAL
            )
            router = Router(faults, strategy="adaptive")
            normal = faults.fault_free_processors()
            src = int(rng.choice(normal))
            dst = int(rng.choice(normal))
            path = router.route(src, dst)
            path_is_valid(path, n)
            assert path[0] == src and path[-1] == dst
            assert not any(faults.is_faulty(p) for p in path)

    def test_path_not_much_longer_than_shortest(self, rng):
        # The greedy DFS usually finds near-minimal simple paths.
        stretch = []
        for _ in range(30):
            n = 5
            faults = FaultSet(
                n, random_faulty_processors(n, n - 1, rng), kind=FaultKind.TOTAL
            )
            adaptive = Router(faults, strategy="adaptive")
            oracle = Router(faults, strategy="shortest")
            normal = faults.fault_free_processors()
            src, dst = int(rng.choice(normal)), int(rng.choice(normal))
            stretch.append(adaptive.hops(src, dst) - oracle.hops(src, dst))
        assert max(stretch) <= 2 * 5  # simple-path bound
        assert sum(stretch) / len(stretch) <= 2.0

    def test_detour_example(self):
        r = Router(FaultSet(2, [1], kind=FaultKind.TOTAL), strategy="adaptive")
        assert r.route(0, 3) == [0, 2, 3]

    def test_raises_when_disconnected(self):
        r = Router(FaultSet(2, [1, 2], kind=FaultKind.TOTAL), strategy="adaptive")
        with pytest.raises(RouteError):
            r.route(0, 3)

    def test_self_route(self):
        r = Router(FaultSet(3, [1], kind=FaultKind.TOTAL))
        assert r.route(5, 5) == [5]
