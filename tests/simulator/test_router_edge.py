"""Edge-case tests for the routing layer and diagnosis under stress."""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults.diagnosis import diagnose_pmc, pmc_syndrome
from repro.faults.model import FaultKind, FaultSet
from repro.simulator.router import RouteError, Router


class TestRouterEdges:
    def test_route_to_faulty_destination_partial(self):
        # Partial model: the destination's comm portion is alive, so the
        # router can deliver (whether anyone reads it is the SPMD layer's
        # check, which rejects sends to faulty ranks).
        r = Router(FaultSet(3, [3], kind=FaultKind.PARTIAL), strategy="ecube")
        assert r.route(0, 3)[-1] == 3

    def test_adaptive_prefers_productive_dims(self):
        # Fault-free: adaptive = lowest-dimension-first e-cube order.
        r = Router(FaultSet(4), strategy="adaptive")
        assert r.route(0b0000, 0b0101) == [0b0000, 0b0001, 0b0101]

    def test_adaptive_spare_dimension_detour(self):
        # Q_3, total fault at 1 blocks e-cube 0->3's first hop; adaptive
        # goes through 2 instead.
        r = Router(FaultSet(3, [1], kind=FaultKind.TOTAL), strategy="adaptive")
        path = r.route(0, 3)
        assert 1 not in path
        assert len(path) == 3

    def test_adaptive_backtracks_out_of_pockets(self):
        # Construct a pocket: in Q_4, faults around the greedy route force
        # at least one non-greedy move; adaptive must still deliver.
        faults = FaultSet(4, [1, 2, 4], kind=FaultKind.TOTAL)
        r = Router(faults, strategy="adaptive")
        path = r.route(0, 15)
        assert path[0] == 0 and path[-1] == 15
        assert not any(faults.is_faulty(p) for p in path)

    def test_all_strategies_agree_fault_free_length(self):
        fs = FaultSet(5)
        for src, dst in [(0, 31), (7, 24), (12, 12)]:
            lengths = {
                Router(fs, strategy=s).hops(src, dst)
                for s in ("ecube", "adaptive", "shortest")
            }
            assert len(lengths) == 1

    def test_hops_zero_for_self(self):
        r = Router(FaultSet(4, [3], kind=FaultKind.TOTAL))
        assert r.hops(5, 5) == 0

    def test_link_fault_only_detour(self):
        fs = FaultSet(3, links=[(0, 1)], kind=FaultKind.PARTIAL)
        r = Router(fs)  # auto -> adaptive because of the link fault
        path = r.route(0, 1)
        assert len(path) == 4  # detour around the dead link
        for a, b in zip(path, path[1:]):
            assert not fs.is_link_faulty(a, b)


class TestDiagnosisStress:
    def test_adversarially_lying_testers(self):
        # Force the worst syndrome: every faulty tester accuses every
        # fault-free neighbor and clears every faulty one.
        n = 4
        fs = FaultSet(n, [0, 5, 10])
        syndrome = {}
        for tester in fs.cube.nodes():
            for tested in fs.cube.neighbors(tester):
                if fs.is_faulty(tester):
                    # lie maximally
                    syndrome[(tester, tested)] = 0 if fs.is_faulty(tested) else 1
                else:
                    syndrome[(tester, tested)] = 1 if fs.is_faulty(tested) else 0
        result = diagnose_pmc(n, syndrome)
        assert result.matches(fs)

    def test_diagnosis_stable_across_random_lies(self):
        n = 5
        fs = FaultSet(n, [2, 9, 17, 30])
        for seed in range(10):
            syndrome = pmc_syndrome(fs, rng=seed)
            assert diagnose_pmc(n, syndrome).matches(fs)

    def test_diagnose_then_route_pipeline(self, rng):
        # Full loop: diagnose, then route around the identified faults.
        n = 4
        fs = FaultSet(n, [6, 9], kind=FaultKind.TOTAL)
        syndrome = pmc_syndrome(fs, rng=rng)
        result = diagnose_pmc(n, syndrome)
        assert result.matches(fs)
        router = Router(FaultSet(n, result.identified, kind=FaultKind.TOTAL))
        normal = fs.fault_free_processors()
        for _ in range(10):
            s, d = int(rng.choice(normal)), int(rng.choice(normal))
            path = router.route(s, d)
            assert not any(p in result.identified for p in path)
