"""Tests for repro.simulator.spmd — coroutine SPMD programs."""

from __future__ import annotations

import pytest

from repro.faults.model import FaultKind, FaultSet
from repro.simulator.params import MachineParams
from repro.simulator.spmd import ANY_SOURCE, Proc, ProgramError, SpmdMachine


def machine(n=2, faults=None, t_element=1.0, t_startup=0.0):
    return SpmdMachine(
        n,
        faults=faults,
        params=MachineParams(t_compare=1.0, t_element=t_element, t_startup=t_startup),
    )


class TestBasics:
    def test_ping(self):
        got = {}

        def program(proc: Proc):
            if proc.rank == 0:
                yield proc.send(1, payload="hello", size=4)
            else:
                got[proc.rank] = yield proc.recv(src=0)

        machine(1).run(program)
        assert got == {1: "hello"}

    def test_ping_pong_clocks(self):
        m = machine(1, t_element=1.0)

        def program(proc: Proc):
            if proc.rank == 0:
                yield proc.send(1, payload=None, size=10)
                yield proc.recv(src=1)
            else:
                yield proc.recv(src=0)
                yield proc.send(0, payload=None, size=10)

        finish = m.run(program)
        assert finish == 20.0  # two sequential 10-element hops

    def test_compute_advances_clock(self):
        m = machine(1)

        def program(proc: Proc):
            yield proc.compute(25)

        m.run({0: program})
        assert m.proc(0).clock == 25.0

    def test_recv_any_source(self):
        order = []

        def program(proc: Proc):
            if proc.rank == 3:
                a = yield proc.recv(src=ANY_SOURCE)
                b = yield proc.recv(src=ANY_SOURCE)
                order.extend([a, b])
            elif proc.rank in (1, 2):
                yield proc.compute(proc.rank * 5)
                yield proc.send(3, payload=proc.rank, size=1)

        machine(2).run({1: program, 2: program, 3: program})
        assert sorted(order) == [1, 2]

    def test_tag_matching(self):
        got = []

        def program(proc: Proc):
            if proc.rank == 0:
                yield proc.send(1, payload="late", size=1, tag=7)
                yield proc.send(1, payload="early", size=1, tag=9)
            else:
                got.append((yield proc.recv(src=0, tag=9)))
                got.append((yield proc.recv(src=0, tag=7)))

        machine(1).run(program)
        assert got == ["early", "late"]

    def test_multihop_through_router(self):
        m = machine(3, t_element=1.0)

        def program(proc: Proc):
            if proc.rank == 0:
                yield proc.send(7, payload="x", size=10)
            elif proc.rank == 7:
                yield proc.recv(src=0)

        m.run({0: program, 7: program})
        # 3 store-and-forward hops of 10 elements each
        assert m.proc(7).clock == 30.0

    def test_counters(self):
        m = machine(1)

        def program(proc: Proc):
            if proc.rank == 0:
                yield proc.send(1, size=1)
                yield proc.send(1, size=1)
            else:
                yield proc.recv()
                yield proc.recv()

        m.run(program)
        assert m.proc(0).sent_messages == 2
        assert m.proc(1).received_messages == 2


class TestErrors:
    def test_deadlock_detected(self):
        def program(proc: Proc):
            yield proc.recv(src=0)

        with pytest.raises(ProgramError, match="deadlock"):
            machine(1).run({1: program})

    def test_send_to_faulty_rejected(self):
        fs = FaultSet(2, [3], kind=FaultKind.PARTIAL)

        def program(proc: Proc):
            yield proc.send(3, size=1)

        with pytest.raises(ProgramError, match="faulty"):
            machine(2, faults=fs).run({0: program})

    def test_program_on_faulty_rank_rejected(self):
        fs = FaultSet(2, [1])

        def program(proc: Proc):
            yield proc.compute(1)

        with pytest.raises(ProgramError):
            machine(2, faults=fs).run({1: program})

    def test_non_generator_rejected(self):
        with pytest.raises(ProgramError):
            machine(1).run({0: lambda proc: 42})

    def test_bad_effect_rejected(self):
        def program(proc: Proc):
            yield "nonsense"

        with pytest.raises(ProgramError, match="unknown effect"):
            machine(1).run({0: program})

    def test_negative_compute_rejected(self):
        def program(proc: Proc):
            yield proc.compute(-1)

        with pytest.raises(ProgramError):
            machine(1).run({0: program})


class TestFaultRouting:
    def test_spmd_over_total_faults_detours(self):
        # Q_3 with a total fault on the e-cube path: adaptive routing
        # delivers anyway, at higher latency.
        fs_free = FaultSet(3)
        fs_total = FaultSet(3, [1], kind=FaultKind.TOTAL)

        def program(proc: Proc):
            if proc.rank == 0:
                yield proc.send(3, size=10)
            elif proc.rank == 3:
                yield proc.recv(src=0)

        m_free = machine(3, t_element=1.0)
        m_free.run({0: program, 3: program})
        m_faulty = SpmdMachine(
            3, faults=fs_total, params=MachineParams(t_compare=1, t_element=1, t_startup=0)
        )
        m_faulty.run({0: program, 3: program})
        assert m_faulty.finish_time == m_free.finish_time  # detour same length here
        assert m_faulty.engine.delivered[0].hops_taken >= 2

    def test_spmd_true_single_program(self):
        # One program body for every rank, mpi4py style.
        results = {}

        def program(proc: Proc):
            if proc.rank == 0:
                total = 0
                for _ in range(3):
                    total += yield proc.recv()
                results["sum"] = total
            else:
                yield proc.send(0, payload=proc.rank, size=1)

        machine(2).run(program)
        assert results["sum"] == 1 + 2 + 3
