"""Tests for repro.simulator.trace — link occupancy tracing."""

from __future__ import annotations

from repro.core.spmd_sort import spmd_fault_tolerant_sort
from repro.faults.model import FaultSet
from repro.simulator.engine import EventEngine, Message
from repro.simulator.params import MachineParams
from repro.simulator.spmd import SpmdMachine
from repro.simulator.trace import LinkTracer


def params():
    return MachineParams(t_compare=1.0, t_element=1.0, t_startup=0.0)


class TestLinkTracer:
    def test_records_every_hop(self):
        eng = EventEngine(params())
        tracer = LinkTracer(eng)
        eng.send(Message(src=0, dst=3, size=10, path=[0, 1, 3]), lambda m: None)
        eng.run()
        assert len(tracer.intervals) == 2
        assert tracer.intervals[0].link == (0, 1)
        assert tracer.intervals[1].link == (1, 3)

    def test_queue_delay_measured(self):
        eng = EventEngine(params())
        tracer = LinkTracer(eng)
        eng.send(Message(src=0, dst=1, size=10, path=[0, 1]), lambda m: None)
        eng.send(Message(src=0, dst=1, size=10, path=[0, 1]), lambda m: None)
        eng.run()
        delays = [iv.queue_delay for iv in tracer.intervals]
        assert delays == [0.0, 10.0]
        assert tracer.waiting_time() == 10.0

    def test_busiest_links(self):
        eng = EventEngine(params())
        tracer = LinkTracer(eng)
        eng.send(Message(src=0, dst=1, size=30, path=[0, 1]), lambda m: None)
        eng.send(Message(src=2, dst=3, size=10, path=[2, 3]), lambda m: None)
        eng.run()
        top = tracer.busiest_links(top=2)
        assert top[0] == ((0, 1), 30.0)
        assert top[1] == ((2, 3), 10.0)

    def test_utilization(self):
        eng = EventEngine(params())
        tracer = LinkTracer(eng)
        eng.send(Message(src=0, dst=1, size=10, path=[0, 1]), lambda m: None)
        eng.schedule(40.0, lambda: None)  # extend horizon
        eng.run()
        assert tracer.utilization((0, 1)) == 0.25

    def test_detach_stops_recording(self):
        eng = EventEngine(params())
        tracer = LinkTracer(eng)
        tracer.detach()
        eng.send(Message(src=0, dst=1, size=10, path=[0, 1]), lambda m: None)
        eng.run()
        assert tracer.intervals == []

    def test_trace_does_not_change_timing(self):
        def run(traced: bool) -> float:
            eng = EventEngine(params())
            if traced:
                LinkTracer(eng)
            for i in range(4):
                eng.send(Message(src=0, dst=3, size=5, path=[0, 1, 3]), lambda m: None)
            return eng.run()

        assert run(True) == run(False)

    def test_report_renders(self):
        eng = EventEngine(params())
        tracer = LinkTracer(eng)
        eng.send(Message(src=0, dst=1, size=10, path=[0, 1]), lambda m: None)
        eng.run()
        out = tracer.report()
        assert "link trace" in out and "0 ->" in out


class TestTracerOnFullSort:
    def test_full_sort_trace(self, rng):
        # Attach a tracer to a real SPMD sort and confirm conservation:
        # traced transmissions equal the engine's delivered hop count.
        keys = rng.integers(0, 100, size=40).astype(float)
        machine = SpmdMachine(3, faults=FaultSet(3, [2]), params=params())
        tracer = LinkTracer(machine.engine)
        from repro.core.schedule import build_plain_schedule
        from repro.core.spmd_sort import run_schedule_spmd

        # run via the low-level API so we control the machine instance
        schedule = build_plain_schedule(3, faulty=2)
        import numpy as np
        from repro.core.blocks import pad_and_chunk
        from repro.core.spmd_sort import _make_program

        chunks, _ = pad_and_chunk(np.asarray(keys, dtype=float), schedule.workers)
        blocks = {rank: chunk for rank, chunk in zip(schedule.output_order, chunks)}
        program = _make_program(schedule, blocks)
        machine.run({rank: program for rank in schedule.output_order})
        total_hops = sum(m.hops_taken for m in machine.engine.delivered)
        assert len(tracer.intervals) == total_hops
        assert tracer.busiest_links(top=1)[0][1] > 0
