"""Tests for repro.sorting.bitonic_cube — blockwise bitonic sort on nodes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.params import MachineParams
from repro.simulator.phases import PhaseMachine
from repro.sorting.bitonic_cube import (
    block_bitonic_merge_groups,
    block_bitonic_sort,
    block_bitonic_sort_groups,
    exchange_pair,
    substage_pairs,
)


def make_machine(n: int) -> PhaseMachine:
    return PhaseMachine(n, params=MachineParams.unit())


def load_blocks(machine, addrs, blocks):
    for a, b in zip(addrs, blocks):
        machine.set_block(a, np.sort(np.asarray(b, dtype=float)))


def gathered(machine, addrs, skip=()):
    out = [machine.get_block(a) for i, a in enumerate(addrs) if i not in skip]
    return np.concatenate(out) if out else np.empty(0)


class TestSubstagePairs:
    def test_stage0(self):
        pairs = substage_pairs(2, 0, 0)
        assert pairs == [(0, 1, True), (2, 3, False)]

    def test_final_stage_all_ascending(self):
        pairs = substage_pairs(3, 2, 1)
        assert all(keep_min for _, _, keep_min in pairs)

    def test_descending_inverts(self):
        asc = substage_pairs(3, 1, 0)
        desc = substage_pairs(3, 1, 0, descending=True)
        assert [(a, b) for a, b, _ in asc] == [(a, b) for a, b, _ in desc]
        assert all(x[2] != y[2] for x, y in zip(asc, desc))

    def test_invalid_substage(self):
        with pytest.raises(ValueError):
            substage_pairs(2, 2, 0)
        with pytest.raises(ValueError):
            substage_pairs(2, 0, 1)


class TestExchangePair:
    def test_splits_between_nodes(self):
        m = make_machine(1)
        m.set_block(0, np.array([2.0, 4.0]))
        m.set_block(1, np.array([1.0, 3.0]))
        with m.phase("x"):
            exchange_pair(m, 0, 1, low_keeps_min=True)
        assert m.get_block(0).tolist() == [1.0, 2.0]
        assert m.get_block(1).tolist() == [3.0, 4.0]

    def test_keep_max_direction(self):
        m = make_machine(1)
        m.set_block(0, np.array([1.0]))
        m.set_block(1, np.array([2.0]))
        with m.phase("x"):
            exchange_pair(m, 0, 1, low_keeps_min=False)
        assert m.get_block(0).tolist() == [2.0]

    def test_dead_partner_skips_all_charges(self):
        m = make_machine(1)
        m.set_block(0, np.array([5.0, 1.0]))
        with m.phase("x") as rec:
            exchange_pair(m, 0, 1, low_keeps_min=True)
        assert rec.elements_sent == 0 and rec.comparisons == 0
        assert m.get_block(0).tolist() == [5.0, 1.0]
        assert m.elapsed == 0.0

    def test_probe_skip_charges_only_probe(self):
        m = make_machine(1)
        m.set_block(0, np.array([1.0, 2.0]))
        m.set_block(1, np.array([3.0, 4.0]))
        with m.phase("x") as rec:
            exchange_pair(m, 0, 1, low_keeps_min=True)
        assert rec.elements_sent == 2  # one probe key each way
        assert rec.comparisons == 2

    def test_no_probe_full_exchange(self):
        m = make_machine(1)
        m.set_block(0, np.array([1.0, 2.0]))
        m.set_block(1, np.array([3.0, 4.0]))
        with m.phase("x") as rec:
            exchange_pair(m, 0, 1, low_keeps_min=True, probe=False)
        assert rec.elements_sent == 4  # k/2 + k/2 each way

    def test_probe_miss_pays_probe_plus_payload(self):
        m = make_machine(1)
        m.set_block(0, np.array([3.0, 4.0]))
        m.set_block(1, np.array([1.0, 2.0]))
        with m.phase("x") as rec:
            exchange_pair(m, 0, 1, low_keeps_min=True)
        assert rec.elements_sent == 2 + 4


class TestBlockBitonicSort:
    @pytest.mark.parametrize("q", [1, 2, 3, 4])
    def test_sorts_fault_free(self, q, rng):
        m = make_machine(q)
        addrs = list(range(1 << q))
        blocks = [rng.integers(0, 100, size=4) for _ in addrs]
        load_blocks(m, addrs, blocks)
        block_bitonic_sort(m, addrs)
        out = gathered(m, addrs)
        np.testing.assert_array_equal(out, np.sort(np.concatenate(blocks).astype(float)))

    @pytest.mark.parametrize("q", [1, 2, 3])
    def test_sorts_with_dead_zero(self, q, rng):
        m = make_machine(q)
        addrs = list(range(1 << q))
        blocks = [np.empty(0)] + [rng.integers(0, 50, size=3) for _ in addrs[1:]]
        load_blocks(m, addrs, blocks)
        block_bitonic_sort(m, addrs, dead_logical={0})
        out = gathered(m, addrs, skip={0})
        expected = np.sort(np.concatenate([np.asarray(b, dtype=float) for b in blocks[1:]]))
        np.testing.assert_array_equal(out, expected)

    def test_descending_reverses_chunk_ranks(self, rng):
        q = 2
        m = make_machine(q)
        addrs = list(range(4))
        blocks = [rng.integers(0, 100, size=2) for _ in addrs]
        load_blocks(m, addrs, blocks)
        block_bitonic_sort(m, addrs, descending=True)
        flat = np.sort(np.concatenate(blocks).astype(float))
        # Descending: logical position l holds rank (P-1-l)'s chunk.
        for l in range(4):
            np.testing.assert_array_equal(
                m.get_block(addrs[l]), flat[(3 - l) * 2 : (4 - l) * 2]
            )

    def test_dead_elsewhere_rejected(self, rng):
        m = make_machine(2)
        addrs = list(range(4))
        load_blocks(m, addrs, [[1], [2], [], [4]])
        m.set_block(2, np.empty(0))
        with pytest.raises(ValueError):
            block_bitonic_sort(m, addrs, dead_logical={2})

    def test_unequal_blocks_rejected(self):
        m = make_machine(1)
        m.set_block(0, np.array([1.0]))
        m.set_block(1, np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            block_bitonic_sort(m, [0, 1])

    def test_non_pow2_rejected(self):
        m = make_machine(2)
        with pytest.raises(ValueError):
            block_bitonic_sort(m, [0, 1, 2])

    def test_xor_relabeling_sorts_in_logical_order(self, rng):
        # Reindexing by XOR mask: sorted in logical order, not physical.
        q, mask = 3, 5
        m = make_machine(q)
        addrs = [l ^ mask for l in range(8)]
        blocks = [rng.integers(0, 100, size=2) for _ in addrs]
        load_blocks(m, addrs, blocks)
        block_bitonic_sort(m, addrs)
        out = gathered(m, addrs)
        np.testing.assert_array_equal(out, np.sort(np.concatenate(blocks).astype(float)))

    def test_phase_count_is_q_q_plus_1_over_2(self, rng):
        q = 3
        m = make_machine(q)
        addrs = list(range(8))
        load_blocks(m, addrs, [rng.integers(0, 9, size=2) for _ in addrs])
        block_bitonic_sort(m, addrs)
        assert len(m.phases) == q * (q + 1) // 2

    @settings(max_examples=30, deadline=None)
    @given(st.data())
    def test_sorts_any_arrangement_property(self, data):
        q = data.draw(st.integers(1, 3))
        k = data.draw(st.integers(1, 5))
        blocks = [
            sorted(data.draw(st.lists(st.integers(0, 20), min_size=k, max_size=k)))
            for _ in range(1 << q)
        ]
        m = make_machine(q)
        addrs = list(range(1 << q))
        load_blocks(m, addrs, blocks)
        block_bitonic_sort(m, addrs)
        out = gathered(m, addrs)
        assert out.tolist() == sorted(x for b in blocks for x in b)


class TestGroups:
    def test_lockstep_phase_sharing(self, rng):
        # Two groups of Q_2 in a Q_3 machine: phases must be shared, so the
        # phase count equals one group's count.
        m = make_machine(3)
        g1 = [0, 1, 2, 3]
        g2 = [4, 5, 6, 7]
        for a in g1 + g2:
            m.set_block(a, np.sort(rng.random(2)))
        block_bitonic_sort_groups(m, [(g1, frozenset(), False), (g2, frozenset(), True)])
        assert len(m.phases) == 3  # 2*(2+1)/2

    def test_overlapping_groups_rejected(self, rng):
        m = make_machine(2)
        for a in range(4):
            m.set_block(a, np.sort(rng.random(2)))
        with pytest.raises(ValueError):
            block_bitonic_sort_groups(
                m, [([0, 1], frozenset(), False), ([1, 2], frozenset(), False)]
            )

    def test_mixed_dimensions_rejected(self, rng):
        m = make_machine(3)
        for a in range(6):
            m.set_block(a, np.sort(rng.random(2)))
        with pytest.raises(ValueError):
            block_bitonic_sort_groups(
                m, [([0, 1], frozenset(), False), ([2, 3, 4, 5], frozenset(), False)]
            )

    def test_empty_groups_noop(self):
        m = make_machine(1)
        block_bitonic_sort_groups(m, [])
        assert m.phases == []


class TestMergeGroups:
    def test_merges_bitonic_block_arrangement(self):
        # Blocks forming an up-down (mountain) arrangement merge ascending.
        m = make_machine(2)
        addrs = [0, 1, 2, 3]
        arrangement = [[1, 2], [5, 6], [7, 8], [3, 4]]
        load_blocks(m, addrs, arrangement)
        block_bitonic_merge_groups(m, [(addrs, frozenset(), False)])
        out = gathered(m, addrs)
        assert out.tolist() == sorted(x for b in arrangement for x in b)

    def test_merge_with_dead_and_sentinel_consistent_input(self):
        # Live blocks valley-shaped: with the dead at 0 (acting as -inf)
        # the virtual sequence is cyclically bitonic; ascending merge works.
        m = make_machine(2)
        addrs = [0, 1, 2, 3]
        load_blocks(m, addrs, [[], [1, 2], [7, 8], [3, 4]])
        m.set_block(0, np.empty(0))
        block_bitonic_merge_groups(m, [(addrs, frozenset({0}), False)])
        out = gathered(m, addrs, skip={0})
        assert out.tolist() == [1, 2, 3, 4, 7, 8]

    def test_merge_phase_count_is_q(self, rng):
        m = make_machine(3)
        addrs = list(range(8))
        load_blocks(m, addrs, [sorted(rng.integers(0, 9, size=2)) for _ in addrs])
        block_bitonic_merge_groups(m, [(addrs, frozenset(), False)])
        assert len(m.phases) == 3

    def test_merge_monotone_input_all_probe_skips(self, unit_params):
        m = make_machine(2)
        addrs = list(range(4))
        load_blocks(m, addrs, [[1, 2], [3, 4], [5, 6], [7, 8]])
        block_bitonic_merge_groups(m, [(addrs, frozenset(), False)])
        # Already ascending: every comparator should probe-skip.
        assert all(p.elements_sent == p.messages for p in m.phases)
        out = gathered(m, addrs)
        assert out.tolist() == [1, 2, 3, 4, 5, 6, 7, 8]
