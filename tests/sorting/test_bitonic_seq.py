"""Tests for repro.sorting.bitonic_seq — Batcher's network on one array."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sorting.bitonic_seq import (
    bitonic_merge_inplace,
    bitonic_sort,
    is_bitonic,
    next_pow2,
)


class TestNextPow2:
    def test_values(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1
        assert next_pow2(2) == 2
        assert next_pow2(3) == 4
        assert next_pow2(1025) == 2048

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            next_pow2(-1)


class TestIsBitonic:
    def test_monotone_is_bitonic(self):
        assert is_bitonic([1, 2, 3])
        assert is_bitonic([3, 2, 1])

    def test_up_down(self):
        assert is_bitonic([1, 5, 9, 4, 2])

    def test_rotation_of_bitonic(self):
        assert is_bitonic([4, 2, 1, 5, 9])

    def test_non_bitonic(self):
        assert not is_bitonic([1, 5, 2, 6, 3])

    def test_tiny_and_constant(self):
        assert is_bitonic([])
        assert is_bitonic([1])
        assert is_bitonic([2, 2, 2])


class TestBitonicMerge:
    def test_merges_bitonic_range(self):
        a = np.array([1.0, 3.0, 4.0, 2.0])
        comps = bitonic_merge_inplace(a, 0, 4, ascending=True)
        assert a.tolist() == [1.0, 2.0, 3.0, 4.0]
        assert comps == 4  # 2 substages x 2 comparisons

    def test_descending(self):
        a = np.array([1.0, 3.0, 4.0, 2.0])
        bitonic_merge_inplace(a, 0, 4, ascending=False)
        assert a.tolist() == [4.0, 3.0, 2.0, 1.0]

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            bitonic_merge_inplace(np.zeros(6), 0, 6, True)

    def test_subrange_untouched_outside(self):
        a = np.array([9.0, 2.0, 1.0, 9.0])
        bitonic_merge_inplace(a, 1, 2, ascending=True)
        assert a[0] == 9.0 and a[3] == 9.0


class TestBitonicSort:
    def test_empty(self):
        out, comps = bitonic_sort([])
        assert out.size == 0 and comps == 0

    def test_power_of_two(self):
        out, _ = bitonic_sort([4, 1, 3, 2])
        assert out.tolist() == [1, 2, 3, 4]

    def test_non_power_of_two_padding(self):
        out, _ = bitonic_sort([3, 1, 2])
        assert out.tolist() == [1, 2, 3]

    def test_descending(self):
        out, _ = bitonic_sort([1, 3, 2], descending=True)
        assert out.tolist() == [3, 2, 1]

    def test_comparison_count_formula(self):
        # n/2 * log n * (log n + 1)/2 comparisons for power-of-two n.
        n = 16
        _, comps = bitonic_sort(np.arange(n)[::-1])
        log_n = 4
        assert comps == (n // 2) * log_n * (log_n + 1) // 2

    def test_oblivious_count_independent_of_data(self, rng):
        counts = {bitonic_sort(rng.random(32))[1] for _ in range(5)}
        assert len(counts) == 1

    @given(st.lists(st.integers(-100, 100), max_size=130))
    def test_sorts_property(self, values):
        out, _ = bitonic_sort(values)
        assert out.tolist() == sorted(values)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=64))
    def test_matches_numpy(self, values):
        out, _ = bitonic_sort(values)
        np.testing.assert_array_equal(out, np.sort(np.asarray(values, dtype=float)))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            bitonic_sort(np.zeros((2, 2)))
