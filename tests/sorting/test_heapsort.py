"""Tests for repro.sorting.heapsort."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sorting.heapsort import heapsort, heapsort_comparisons_worst_case


class TestHeapsort:
    def test_empty(self):
        out, comps = heapsort([])
        assert out.size == 0 and comps == 0

    def test_single(self):
        out, comps = heapsort([5.0])
        assert out.tolist() == [5.0] and comps == 0

    def test_sorted_input(self):
        out, _ = heapsort([1, 2, 3, 4, 5])
        assert out.tolist() == [1, 2, 3, 4, 5]

    def test_reverse_input(self):
        out, _ = heapsort([5, 4, 3, 2, 1])
        assert out.tolist() == [1, 2, 3, 4, 5]

    def test_duplicates(self):
        out, _ = heapsort([2, 2, 1, 1, 3, 3])
        assert out.tolist() == [1, 1, 2, 2, 3, 3]

    def test_descending(self):
        out, _ = heapsort([3, 1, 2], descending=True)
        assert out.tolist() == [3, 2, 1]

    def test_input_not_modified(self):
        arr = np.array([3.0, 1.0, 2.0])
        heapsort(arr)
        assert arr.tolist() == [3.0, 1.0, 2.0]

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            heapsort(np.zeros((2, 2)))

    def test_handles_inf_padding_keys(self):
        out, _ = heapsort([np.inf, 1.0, np.inf, 0.0])
        assert out.tolist() == [0.0, 1.0, np.inf, np.inf]

    @given(st.lists(st.integers(-1000, 1000), max_size=200))
    def test_sorts_property(self, values):
        out, comps = heapsort(values)
        assert out.tolist() == sorted(values)
        assert comps >= 0

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False), min_size=2, max_size=100))
    def test_comparison_count_within_worst_case(self, values):
        _, comps = heapsort(values)
        # Heapsort's comparison count is at most ~2 n log n; the paper's
        # formula bounds the extraction phase.  Sanity bound: 4 n log n.
        n = len(values)
        assert comps <= 4 * n * max(math.ceil(math.log2(n)), 1)

    def test_comparisons_monotone_tendency(self, rng):
        small = np.mean([heapsort(rng.random(64))[1] for _ in range(5)])
        large = np.mean([heapsort(rng.random(512))[1] for _ in range(5)])
        assert large > small


class TestWorstCaseFormula:
    def test_small_values(self):
        assert heapsort_comparisons_worst_case(0) == 0
        assert heapsort_comparisons_worst_case(1) == 0
        # (2-1)*ceil(log2 2) + 1 = 2
        assert heapsort_comparisons_worst_case(2) == 2

    def test_paper_expression(self):
        m = 1000
        expected = (m - 1) * math.ceil(math.log2(m)) + 1
        assert heapsort_comparisons_worst_case(m) == expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            heapsort_comparisons_worst_case(-1)

    def test_formula_is_a_rough_upper_envelope(self, rng):
        # Actual heapsort comparisons should be within ~2x of the paper's
        # worst-case expression (it ignores heap construction).
        for m in (32, 128, 1024):
            _, comps = heapsort(rng.random(m))
            assert comps <= 2 * heapsort_comparisons_worst_case(m) + m
