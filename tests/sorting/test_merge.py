"""Tests for repro.sorting.merge — the half-traffic compare-split kernel."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sorting.merge import (
    compare_split,
    compare_split_counts,
    merge_split_reference,
)

sorted_block = st.lists(
    st.floats(allow_nan=False, allow_infinity=False, width=32), min_size=1, max_size=64
).map(sorted)


class TestReference:
    def test_basic(self):
        low, high = merge_split_reference([1, 3, 5], [2, 4, 6])
        assert low.tolist() == [1, 2, 3]
        assert high.tolist() == [4, 5, 6]

    def test_unequal_lengths(self):
        low, high = merge_split_reference([5], [1, 2, 3])
        assert low.tolist() == [1]
        assert high.tolist() == [2, 3, 5]


class TestCounts:
    def test_zero_block(self):
        assert compare_split_counts(0) == (0, 0, 0)

    def test_even_block(self):
        sent, comps, merges = compare_split_counts(8)
        assert sent == 8  # 4 first leg + 4 returned
        assert comps == 8
        assert merges == 14  # (k-1) per side

    def test_odd_block(self):
        sent, comps, merges = compare_split_counts(5)
        assert sent == 3 + 2
        assert comps == 5
        assert merges == 8

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            compare_split_counts(-1)


class TestCompareSplit:
    def test_disjoint_ranges(self):
        res = compare_split(np.array([1.0, 2.0]), np.array([3.0, 4.0]))
        assert res.low.tolist() == [1.0, 2.0]
        assert res.high.tolist() == [3.0, 4.0]

    def test_interleaved(self):
        res = compare_split(np.array([1.0, 4.0]), np.array([2.0, 3.0]))
        assert res.low.tolist() == [1.0, 2.0]
        assert res.high.tolist() == [3.0, 4.0]

    def test_exchange_split_lemma_example(self):
        # The exchange-split lemma holds for ANY two sorted blocks, not
        # just bitonic arrangements.
        a = np.array([0.0, 5.0, 6.0])
        b = np.array([1.0, 2.0, 7.0])
        res = compare_split(a, b)
        ref_low, ref_high = merge_split_reference(a, b)
        np.testing.assert_array_equal(res.low, ref_low)
        np.testing.assert_array_equal(res.high, ref_high)

    def test_empty_side_short_circuits(self):
        a = np.array([3.0, 1.0, 2.0])  # even unsorted survives: dead-node rule
        res = compare_split(np.empty(0), a)
        assert res.comparisons == 0
        assert res.sent_low_to_high == 0
        assert res.high.tolist() == sorted(a.tolist())

    def test_unequal_sizes_rejected(self):
        with pytest.raises(ValueError):
            compare_split(np.array([1.0]), np.array([1.0, 2.0]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            compare_split(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_counts_match_protocol(self):
        res = compare_split(np.arange(6.0), np.arange(6.0) + 0.5)
        sent, comps, merges = compare_split_counts(6)
        assert res.sent_low_to_high == res.sent_high_to_low == sent
        assert res.comparisons == comps
        assert res.merge_comparisons == merges

    def test_duplicates_preserved_as_multiset(self):
        a = np.array([1.0, 1.0, 2.0])
        b = np.array([1.0, 2.0, 2.0])
        res = compare_split(a, b)
        combined = sorted(res.low.tolist() + res.high.tolist())
        assert combined == sorted(a.tolist() + b.tolist())

    def test_padding_keys_go_high(self):
        a = np.array([1.0, np.inf])
        b = np.array([2.0, np.inf])
        res = compare_split(a, b)
        assert res.low.tolist() == [1.0, 2.0]
        assert np.isinf(res.high).all()

    @given(sorted_block, sorted_block)
    def test_matches_reference_property(self, a, b):
        # Pad to equal length by trimming the longer block.
        k = min(len(a), len(b))
        a, b = np.array(a[:k], dtype=float), np.array(b[:k], dtype=float)
        res = compare_split(a, b)
        ref_low, ref_high = merge_split_reference(a, b)
        np.testing.assert_array_equal(res.low, ref_low)
        np.testing.assert_array_equal(res.high, ref_high)

    @given(sorted_block, sorted_block)
    def test_outputs_sorted_and_separated(self, a, b):
        k = min(len(a), len(b))
        a, b = np.array(a[:k], dtype=float), np.array(b[:k], dtype=float)
        res = compare_split(a, b)
        assert (np.diff(res.low) >= 0).all()
        assert (np.diff(res.high) >= 0).all()
        if res.low.size and res.high.size:
            assert res.low[-1] <= res.high[0]
