"""Tests for repro.sorting.odd_even — Batcher's odd-even merge network."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.cube.address import hamming_distance
from repro.sorting.bitonic_seq import bitonic_sort
from repro.sorting.odd_even import comparator_count, comparators, odd_even_merge_sort


class TestNetworkStructure:
    def test_small_networks_sort_all_01(self):
        # zero-one principle, exhaustively, for n up to 16
        for n in (2, 4, 8, 16):
            net = comparators(n)
            for bits in range(1 << n):
                a = [(bits >> i) & 1 for i in range(n)]
                for i, j in net:
                    if a[i] > a[j]:
                        a[i], a[j] = a[j], a[i]
                assert a == sorted(a), (n, bits)

    def test_comparator_counts(self):
        # Batcher's classical counts: C(n) = C(n/2)*2 + M(n) with
        # M(n) = n/2 (log2 n - 1) + 1 merge comparators.
        assert [comparator_count(n) for n in (2, 4, 8, 16, 32)] == [1, 5, 19, 63, 191]

    def test_fewer_comparators_than_bitonic(self):
        for n in (8, 16, 32, 64):
            bitonic = (n // 2) * (n.bit_length() - 1) * n.bit_length() // 2
            assert comparator_count(n) < bitonic

    def test_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            comparators(6)

    def test_not_all_pairs_are_hypercube_neighbors(self):
        # The reason hypercube machines prefer bitonic: odd-even merge
        # compares positions at non-power-of-two offsets.
        net = comparators(8)
        non_neighbors = [(i, j) for i, j in net if hamming_distance(i, j) != 1]
        assert non_neighbors  # e.g. (1, 2) style pairs exist

    def test_bitonic_all_pairs_are_hypercube_neighbors(self):
        # Contrast: every bitonic comparator is a dimension exchange.
        from repro.sorting.bitonic_cube import substage_pairs

        for i in range(3):
            for j in range(i, -1, -1):
                for low, high, _ in substage_pairs(3, i, j):
                    assert hamming_distance(low, high) == 1


class TestOddEvenSort:
    def test_basic(self):
        out, comps = odd_even_merge_sort([3, 1, 2])
        assert out.tolist() == [1, 2, 3]
        assert comps == comparator_count(4)

    def test_empty(self):
        out, comps = odd_even_merge_sort([])
        assert out.size == 0 and comps == 0

    def test_oblivious_comparison_count(self, rng):
        counts = {odd_even_merge_sort(rng.random(20))[1] for _ in range(5)}
        assert len(counts) == 1

    @given(st.lists(st.integers(-100, 100), max_size=100))
    def test_sorts_property(self, values):
        out, _ = odd_even_merge_sort(values)
        assert out.tolist() == sorted(values)

    @given(st.lists(st.floats(allow_nan=False, allow_infinity=False, width=32), max_size=50))
    def test_agrees_with_bitonic(self, values):
        a, _ = odd_even_merge_sort(values)
        b, _ = bitonic_sort(values)
        np.testing.assert_array_equal(a, b)
