"""Tests for repro.cli — the unified command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import _parse_faults, main


class TestParseFaults:
    def test_empty(self):
        assert _parse_faults("") == []

    def test_list(self):
        assert _parse_faults("3,5,16") == [3, 5, 16]

    def test_spaces_tolerated(self):
        assert _parse_faults("3, 5 ,16") == [3, 5, 16]


class TestSortCommand:
    def test_sort_ok(self, capsys):
        rc = main(["sort", "--n", "4", "--faults", "1,6", "--keys", "500"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified : True" in out
        assert "D_beta" in out
        assert "breakdown" in out

    def test_sort_fault_free(self, capsys):
        rc = main(["sort", "--n", "3", "--keys", "100"])
        assert rc == 0
        assert "verified : True" in capsys.readouterr().out

    def test_sort_total_kind(self, capsys):
        rc = main(["sort", "--n", "4", "--faults", "2,9", "--keys", "200",
                   "--kind", "total"])
        assert rc == 0
        assert "(total)" in capsys.readouterr().out

    def test_sort_spmd_engine(self, capsys):
        rc = main(["sort", "--n", "3", "--faults", "1,6", "--keys", "60", "--spmd"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "message-level engine" in out
        assert "messages" in out


class TestTraceCommand:
    def test_acceptance_invocation(self, capsys, tmp_path):
        """The ISSUE's canonical invocation: Q_6, faults 7,25,52."""
        out_path = tmp_path / "trace.json"
        rc = main(["trace", "--n", "6", "--faults", "7,25,52",
                   "--out", str(out_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "verified : True" in out
        # Per-step durations for steps 1-8 appear in the summary.
        for k in range(1, 9):
            assert f"step{k}" in out
        assert "sort.messages" in out
        assert "hottest spans" in out
        # The file is a loadable Chrome trace_event JSON array.
        events = json.loads(out_path.read_text())
        assert isinstance(events, list) and events
        complete = [e for e in events if e.get("ph") == "X"]
        assert complete, "no complete events in trace"
        for ev in complete:
            for field in ("name", "ph", "ts", "dur", "pid", "tid"):
                assert field in ev, field
        names = {e["name"] for e in complete}
        assert "ftsort" in names
        assert any(n.startswith("step7") for n in names)

    def test_trace_spmd_engine(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main(["trace", "--n", "4", "--faults", "1,6", "--keys", "240",
                   "--out", str(out_path), "--spmd"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "message-level engine" in out
        events = json.loads(out_path.read_text())
        cats = {e.get("cat") for e in events if e.get("ph") == "X"}
        assert {"link", "msg", "proc"} <= cats

    def test_trace_fault_free(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        rc = main(["trace", "--n", "3", "--keys", "64", "--out", str(out_path)])
        assert rc == 0
        assert "verified : True" in capsys.readouterr().out
        assert json.loads(out_path.read_text())


class TestPlanCommand:
    def test_paper_example(self, capsys):
        rc = main(["plan", "--n", "5", "--faults", "3,5,16,24"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "mincut m = 3" in out
        assert "[0, 1, 3]" in out

    def test_single_fault_plan(self, capsys):
        rc = main(["plan", "--n", "4", "--faults", "9"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "no partition needed" in out


class TestDiagnoseCommand:
    def test_roundtrip(self, capsys):
        rc = main(["diagnose", "--n", "5", "--faults", "3,5,16,24"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "diagnosis correct: True" in out


class TestPassthrough:
    def test_table1_passthrough(self, capsys):
        rc = main(["table1", "--trials", "20", "--ns", "3"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 1" in out

    def test_figure7_passthrough(self, capsys):
        rc = main(["figure7", "--n", "3", "--points", "2", "--placements", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 7" in out


class TestChaosCommand:
    def test_fast_campaign_passes(self, capsys, tmp_path):
        report = tmp_path / "chaos.jsonl"
        rc = main(["chaos", "--scenarios", "6", "--seed", "12",
                   "--out", str(report), "--no-shrink"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "passed            : 6/6" in out
        lines = report.read_text().splitlines()
        assert len(lines) == 7  # 6 scenarios + summary
        assert all(json.loads(ln) for ln in lines)

    def test_single_backend_selection(self, capsys, tmp_path):
        rc = main(["chaos", "--scenarios", "2", "--backend", "phase",
                   "--out", str(tmp_path / "r.jsonl")])
        out = capsys.readouterr().out
        assert rc == 0
        assert "backends phase" in out and "spmd" not in out


class TestFaultsValidation:
    """--faults mistakes exit with a one-line message, never a traceback."""

    def _message(self, argv) -> str:
        with pytest.raises(SystemExit) as exc:
            main(argv)
        return str(exc.value)

    def test_non_integer_token(self):
        msg = self._message(["sort", "--n", "3", "--faults", "banana"])
        assert "not an integer" in msg

    def test_negative_address(self):
        msg = self._message(["sort", "--n", "3", "--faults=-2"])
        assert "negative" in msg

    def test_out_of_range_address(self):
        msg = self._message(["trace", "--n", "3", "--faults", "1,9"])
        assert "out of range" in msg and "0..7" in msg

    def test_duplicate_address(self):
        msg = self._message(["plan", "--n", "4", "--faults", "3,5,3"])
        assert "listed twice" in msg

    def test_too_many_faults(self):
        msg = self._message(["sort", "--n", "3", "--faults", "1,2,3"])
        assert "at most r = n - 1 = 2" in msg

    def test_valid_input_unaffected(self, capsys):
        rc = main(["plan", "--n", "4", "--faults", "3,5,9"])
        assert rc == 0


class TestErrors:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required(self):
        with pytest.raises(SystemExit):
            main(["plan", "--n", "4"])

    def test_unknown_extra_args(self):
        with pytest.raises(SystemExit):
            main(["sort", "--n", "3", "--bogus"])
