"""Repository-quality tests: docs exist, quickstart runs, API is importable."""

from __future__ import annotations

import pathlib
import re

import numpy as np
import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent


class TestDocumentsExist:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md", "EXPERIMENTS.md"])
    def test_present_and_substantial(self, name):
        path = REPO / name
        assert path.exists(), name
        assert len(path.read_text()) > 2000, f"{name} looks stubby"

    def test_design_covers_every_subpackage(self):
        design = (REPO / "DESIGN.md").read_text()
        src = REPO / "src" / "repro"
        for pkg in sorted(p.name for p in src.iterdir() if p.is_dir()):
            assert f"repro.{pkg}" in design or f"{pkg}/" in design, (
                f"DESIGN.md does not mention subpackage {pkg}"
            )

    def test_experiments_covers_every_artifact(self):
        text = (REPO / "EXPERIMENTS.md").read_text()
        for artifact in ("Table 1", "Table 2", "Figure 7", "Example 1", "Example 2"):
            assert artifact in text


class TestReadmeQuickstart:
    def test_quickstart_code_runs(self):
        readme = (REPO / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, flags=re.S)
        assert blocks, "README has no python example"
        ns: dict = {}
        exec(blocks[0], ns)  # noqa: S102 - executing our own documentation
        assert "result" in ns

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.findall(r"`(\w+\.py)`", readme):
            assert (REPO / "examples" / match).exists(), match


class TestPublicApi:
    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_exports_resolve(self):
        import importlib

        for pkg in ("cube", "faults", "simulator", "comm", "sorting", "core",
                    "baselines", "experiments", "analysis", "host", "obs",
                    "chaos"):
            mod = importlib.import_module(f"repro.{pkg}")
            for name in getattr(mod, "__all__", ()):
                assert hasattr(mod, name), f"repro.{pkg}.{name}"

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            mod = importlib.import_module(info.name)
            assert mod.__doc__ and len(mod.__doc__) > 40, (
                f"{info.name} lacks a real module docstring"
            )

    def test_version_is_semver(self):
        import repro

        assert re.fullmatch(r"\d+\.\d+\.\d+", repro.__version__)
