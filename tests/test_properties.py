"""Cross-cutting property-based tests (hypothesis).

Properties that span modules: obliviousness of the cost structure,
permutation invariance, plan determinism, and a stateful exercise of the
discrete-event engine.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.ftsort import fault_tolerant_sort
from repro.core.partition import find_min_cuts
from repro.core.selection import select_cut_sequence
from repro.simulator.engine import EventEngine, Message
from repro.simulator.params import MachineParams


class TestPermutationInvariance:
    @given(st.permutations(list(range(24))))
    @settings(max_examples=20, deadline=None)
    def test_output_independent_of_input_order(self, perm):
        keys = np.asarray(perm, dtype=float)
        res = fault_tolerant_sort(keys, 4, [1, 6])
        assert res.sorted_keys.tolist() == sorted(float(p) for p in perm)

    @given(st.permutations(list(range(24))))
    @settings(max_examples=10, deadline=None)
    def test_phase_structure_independent_of_data(self, perm):
        # The network is oblivious: phase labels and comparator traffic
        # structure don't depend on key values (probe skips change traffic
        # volume, never the phase sequence).
        keys = np.asarray(perm, dtype=float)
        res = fault_tolerant_sort(keys, 4, [1, 6])
        ref = fault_tolerant_sort(np.arange(24, dtype=float), 4, [1, 6])
        assert [p.label for p in res.machine.phases] == [
            p.label for p in ref.machine.phases
        ]


class TestPlanDeterminism:
    @given(st.sets(st.integers(0, 31), min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_partition_deterministic(self, faults):
        a = find_min_cuts(5, sorted(faults))
        b = find_min_cuts(5, sorted(faults))
        assert a == b

    @given(st.sets(st.integers(0, 31), min_size=2, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_selection_cost_minimal_over_psi(self, faults):
        from repro.core.selection import extra_comm_cost

        partition = find_min_cuts(5, sorted(faults))
        sel = select_cut_sequence(partition)
        for dims in partition.cutting_set:
            assert sel.cost <= extra_comm_cost(5, dims, sorted(faults))


class TestCostMonotonicity:
    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_elapsed_monotone_in_keys(self, scale):
        p = MachineParams.ncube7()
        rng = np.random.default_rng(scale)
        small = fault_tolerant_sort(rng.random(100 * scale), 4, [3], params=p).elapsed
        large = fault_tolerant_sort(rng.random(400 * scale), 4, [3], params=p).elapsed
        assert large > small


class EventEngineMachine(RuleBasedStateMachine):
    """Stateful fuzz of the discrete-event kernel.

    Invariants: the clock never runs backwards, deliveries never exceed
    injections, and every delivered message took exactly its path length
    in hops.
    """

    def __init__(self):
        super().__init__()
        self.engine = EventEngine(MachineParams(t_compare=1, t_element=1, t_startup=2))
        self.sent = 0
        self.last_now = 0.0

    @rule(src=st.integers(0, 7), dim_path=st.lists(st.integers(0, 2), max_size=3),
          size=st.integers(0, 20))
    def send_message(self, src, dim_path, size):
        path = [src]
        for d in dim_path:
            nxt = path[-1] ^ (1 << d)
            path.append(nxt)
        msg = Message(src=path[0], dst=path[-1], size=size, path=path)
        self.engine.send(msg, lambda m: None)
        self.sent += 1

    @rule(horizon=st.floats(0, 500))
    def run_until(self, horizon):
        self.engine.run(until=self.engine.now + horizon)

    @rule()
    def drain(self):
        self.engine.run()

    @invariant()
    def clock_monotone(self):
        assert self.engine.now >= self.last_now
        self.last_now = self.engine.now

    @invariant()
    def conservation(self):
        assert len(self.engine.delivered) <= self.sent

    @invariant()
    def delivered_messages_complete(self):
        for m in self.engine.delivered:
            assert m.delivered_at is not None
            assert m.delivered_at >= m.sent_at
            assert m.hops_taken == len(m.path) - 1

    def teardown(self):
        self.engine.run()
        assert len(self.engine.delivered) == self.sent


TestEventEngineStateful = EventEngineMachine.TestCase
